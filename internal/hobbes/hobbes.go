// Package hobbes simulates the Hobbes OS/R master control process: the
// node-wide coordinator for enclave lifecycle, cross-enclave resource
// sharing, application composition, and the resource-management event bus
// that the Covirt controller module hooks into.
package hobbes

import (
	"fmt"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/trace"
	"covirt/internal/xemem"
)

// EventKind classifies resource-management events on the Hobbes bus.
type EventKind int

// Event kinds. Pre events fire before the affected enclave can observe the
// new resource (protection layers map first); Post events fire after the
// enclave has relinquished a resource (protection layers unmap and flush,
// then the operation completes).
const (
	EvEnclaveCreated EventKind = iota
	EvEnclaveBootPre
	EvEnclaveBooted
	EvEnclaveCrashed
	EvEnclaveDestroyed
	EvMemAddPre
	EvMemRemovePost
	EvCPUAddPre
	EvCPURemovePost
	EvXememAttachPre
	EvXememDetachPost
	EvIPIGrant
	EvIPIRevoke
	// Supervision lifecycle (emitted by internal/supervisor): a watchdog
	// hang verdict, a restart attempt beginning, a successful re-admission,
	// and the terminal escalation when the restart budget is exhausted.
	EvEnclaveHung
	EvEnclaveRestarting
	EvEnclaveRecovered
	EvEnclaveQuarantined
	// EvCapRevoked announces that a capability died: Cap names the key,
	// and for memory/XEMEM revocations Extents carries the withdrawn
	// frames so protection layers can unmap the holder's context. The
	// supervisor observes these to audit revocation storms.
	EvCapRevoked
	// EvIngestFlush closes any shootdown epoch a protection layer left
	// open while coalescing a batch of resource events: it carries no
	// resource of its own, only the instruction "flush everything you have
	// deferred for this enclave now". EmitBatch sends one automatically
	// when a batch ends early, so a mid-batch error can never strand
	// unmapped-but-unflushed translations.
	EvIngestFlush
)

// String names the event kind.
func (k EventKind) String() string {
	names := []string{
		"enclave-created", "enclave-boot-pre", "enclave-booted",
		"enclave-crashed", "enclave-destroyed", "mem-add-pre",
		"mem-remove-post", "cpu-add-pre", "cpu-remove-post",
		"xemem-attach-pre", "xemem-detach-post",
		"ipi-grant", "ipi-revoke",
		"enclave-hung", "enclave-restarting",
		"enclave-recovered", "enclave-quarantined",
		"cap-revoked", "ingest-flush",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one resource-management notification.
type Event struct {
	Kind     EventKind
	Enclave  *pisces.Enclave // affected enclave (consumer for XEMEM events)
	Extents  []hw.Extent
	SegID    uint64
	DestCore int   // IPI grant/revoke: machine core id
	Core     int   // CPU add/remove: machine core id
	Vector   uint8 // IPI grant/revoke
	Reason   string
	// Cap names the capability authorizing (grant events) or killed by
	// (EvCapRevoked) the crossing.
	Cap authority.Cap
	// Cost accumulates management-plane cycles spent by handlers; callers
	// on synchronous paths (longcalls) charge it to the waiting guest.
	Cost uint64
	// MoreInBatch marks an event as a non-final member of a batch: more
	// events for the same operation follow immediately, so protection
	// layers may defer their TLB shootdown and coalesce it into the
	// batch's final event.
	MoreInBatch bool
}

// Handler processes an event. An error from a Pre handler aborts the
// triggering operation.
type Handler func(ev *Event) error

// Bus is the synchronous event bus.
type Bus struct {
	mu       sync.Mutex //covirt:guards handlers
	handlers []Handler
	tracer   *trace.Buffer
}

// Subscribe appends h; handlers run in subscription order.
func (b *Bus) Subscribe(h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers = append(b.handlers, h)
}

// SetTracer routes every emitted event into the flight recorder as an
// "ev:<kind>" record. A nil buffer disables bus tracing.
func (b *Bus) SetTracer(t *trace.Buffer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = t
}

// snapshot copies the handler list and tracer under the lock so Emit can
// run the handlers (which may Subscribe re-entrantly) without holding it.
func (b *Bus) snapshot() ([]Handler, *trace.Buffer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Handler(nil), b.handlers...), b.tracer
}

// Emit delivers ev to all handlers, stopping at the first error.
func (b *Bus) Emit(ev *Event) error {
	handlers, tracer := b.snapshot()
	if tracer != nil {
		encID := -1
		if ev.Enclave != nil {
			encID = ev.Enclave.ID
		}
		tracer.Record(-1, 0, "ev:"+ev.Kind.String(), "enclave %d %s", encID, ev.Reason)
	}
	for _, h := range handlers {
		if err := h(ev); err != nil {
			return err
		}
	}
	return nil
}

// EmitBatch delivers evs as one batch: every event except the last is
// marked MoreInBatch so subscribers may defer per-event TLB shootdowns and
// coalesce them into the final event's epoch. The batch invariant is that
// every enclave that saw a deferred event sees a closing one: if the batch
// stops early (handler error), or if an enclave's last deferred event is
// not the batch's final event, EmitBatch emits an EvIngestFlush for that
// enclave so no unmapped-but-unflushed translation survives the call.
// Returns the first handler error, after the flush sweep.
func (b *Bus) EmitBatch(evs []*Event) error {
	open := make(map[*pisces.Enclave]bool)
	var firstErr error
	for i, ev := range evs {
		ev.MoreInBatch = i < len(evs)-1
		if err := b.Emit(ev); err != nil {
			if ev.MoreInBatch && ev.Enclave != nil {
				open[ev.Enclave] = true
			}
			firstErr = err
			break
		}
		if ev.Enclave != nil {
			if ev.MoreInBatch {
				open[ev.Enclave] = true
			} else {
				delete(open, ev.Enclave)
			}
		}
	}
	for enc := range open {
		if err := b.Emit(&Event{Kind: EvIngestFlush, Enclave: enc}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Master is the Hobbes master control process.
type Master struct {
	FW   *pisces.Framework
	Reg  *xemem.Registry
	Bus  *Bus
	Auth *authority.Table

	// rootIPI is the host's root IPI capability; every vector grant is
	// delegated from it.
	rootIPI authority.Cap

	//covirt:guards ipiGrant
	mu       sync.Mutex
	ipiGrant map[int]map[ipiKey]authority.Cap // enclave id -> granted (core,vector) -> key
}

type ipiKey struct {
	dest   int
	vector uint8
}

// NewMaster builds the master control process over a Pisces framework and
// bridges the framework's events onto the Hobbes bus.
func NewMaster(fw *pisces.Framework) *Master {
	m := &Master{
		FW:       fw,
		Reg:      xemem.NewRegistry(fw.Auth),
		Bus:      &Bus{},
		Auth:     fw.Auth,
		ipiGrant: make(map[int]map[ipiKey]authority.Cap),
	}
	m.rootIPI = m.Auth.Mint(0, authority.KindIPI, authority.RightsAll,
		authority.WildScope(), "root-ipi")
	fw.Subscribe(func(ev *pisces.Event) error { return m.onFrameworkEvent(ev) })
	return m
}

// onFrameworkEvent adapts Pisces lifecycle events to the Hobbes bus and
// performs master-control cleanup duties.
func (m *Master) onFrameworkEvent(ev *pisces.Event) error {
	kindMap := map[pisces.EventKind]EventKind{
		pisces.EvCreated:       EvEnclaveCreated,
		pisces.EvBootPre:       EvEnclaveBootPre,
		pisces.EvBooted:        EvEnclaveBooted,
		pisces.EvMemAddPre:     EvMemAddPre,
		pisces.EvMemRemovePost: EvMemRemovePost,
		pisces.EvCPUAddPre:     EvCPUAddPre,
		pisces.EvCPURemovePost: EvCPURemovePost,
		pisces.EvCrashed:       EvEnclaveCrashed,
		pisces.EvDestroyed:     EvEnclaveDestroyed,
	}
	hev := &Event{Kind: kindMap[ev.Kind], Enclave: ev.Enclave, Core: ev.Core, Reason: ev.Reason, Cap: ev.Cap, MoreInBatch: ev.MoreInBatch}
	if ev.Extent.Size > 0 {
		hev.Extents = []hw.Extent{ev.Extent}
	}
	if ev.Kind == pisces.EvCrashed || ev.Kind == pisces.EvDestroyed {
		// Reclaim the dead enclave's shared-memory footprint and notify
		// dependents (here: just record state; the Covirt controller
		// subscribes and unmaps consumers' protection contexts).
		owned, _ := m.Reg.CleanupEnclave(ev.Enclave.ID)
		for _, seg := range owned {
			hev.SegID = seg.ID
		}
		m.dropGrants(ev.Enclave.ID)
	}
	return m.Bus.Emit(hev)
}

// dropGrants forgets all IPI grants of a dead enclave.
func (m *Master) dropGrants(encID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.ipiGrant, encID)
}

// GrantIPI allows enclave enc to send vector to machine core dest —
// Hobbes' globally-allocatable per-core IPI vector resource. The grant is
// a capability delegated from the host's root IPI key; the Covirt filter
// stores it and re-checks its generation on every send.
func (m *Master) GrantIPI(enc *pisces.Enclave, dest int, vector uint8) error {
	cap, err := m.Auth.Delegate(m.rootIPI, enc.ID, authority.RightSend,
		authority.IPIScope(dest, vector), fmt.Sprintf("%s/ipi", enc.Name))
	if err != nil {
		return err
	}
	m.addGrant(enc.ID, ipiKey{dest, vector}, cap)
	return m.Bus.Emit(&Event{Kind: EvIPIGrant, Enclave: enc, DestCore: dest, Vector: vector, Cap: cap})
}

// addGrant records a grant in the per-enclave whitelist under the lock
// (the bus emit must run outside it: handlers call back into the master).
func (m *Master) addGrant(encID int, k ipiKey, cap authority.Cap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ipiGrant[encID]
	if g == nil {
		g = make(map[ipiKey]authority.Cap)
		m.ipiGrant[encID] = g
	}
	g[k] = cap
}

// RevokeIPI withdraws a grant, killing its key.
func (m *Master) RevokeIPI(enc *pisces.Enclave, dest int, vector uint8) error {
	cap, ok := m.removeGrant(enc.ID, ipiKey{dest, vector})
	if ok && m.Auth.Alive(cap) {
		_, _ = m.Auth.Revoke(cap)
	}
	return m.Bus.Emit(&Event{Kind: EvIPIRevoke, Enclave: enc, DestCore: dest, Vector: vector, Cap: cap})
}

// removeGrant deletes one grant under the lock, returning its key.
func (m *Master) removeGrant(encID int, k ipiKey) (authority.Cap, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ipiGrant[encID]
	if g == nil {
		return authority.Cap{}, false
	}
	cap, ok := g[k]
	delete(g, k)
	return cap, ok
}

// IPIGranted reports whether enc may send vector to dest (and the grant's
// key is still alive).
func (m *Master) IPIGranted(encID, dest int, vector uint8) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cap, ok := m.ipiGrant[encID][ipiKey{dest, vector}]
	return ok && m.Auth.Alive(cap)
}

// RevokeCap is the central revocation driver: it kills c — and,
// recursively, everything delegated from it — then propagates each
// withdrawal to the protection structures that honored the key:
//
//   - memory keys: an EvCapRevoked event carrying the withdrawn extent;
//     the Covirt controller unmaps the holder's EPT range and runs the
//     command-queue TLB shootdown, so the holder's very next touch of the
//     withdrawn memory is a contained EPT violation.
//   - XEMEM owner keys: the segment is force-dropped from the registry;
//     the recursive revocation already killed every consumer's attach key,
//     and each one propagates as its own EvCapRevoked unmap.
//   - IPI keys: the grant leaves the master's whitelist; the filter's
//     per-send generation check makes the key dead instantly either way.
//   - I/O keys: EvCapRevoked; the controller drops the port range.
//
// Every kill emits EvCapRevoked on the bus so the supervisor can observe
// the storm's blast radius.
func (m *Master) RevokeCap(c authority.Cap) error {
	scope, ok := m.Auth.ScopeOf(c)
	if !ok {
		return fmt.Errorf("hobbes: revoke of dead or forged cap %d", c.ID)
	}
	// For an XEMEM key, capture the segment's extents before the registry
	// record disappears: the attach-key revocations below need the frame
	// list to unmap each consumer's context.
	var segExts []hw.Extent
	if c.Kind == authority.KindXemem {
		if seg, err := m.Reg.Lookup(scope.SegID); err == nil {
			segExts = append([]hw.Extent(nil), seg.Extents...)
			if seg.OwnerCap.ID == c.ID {
				m.Reg.ForceDrop(scope.SegID)
			} else {
				m.Reg.DropAttachment(scope.SegID, c.Holder)
			}
		}
	}
	revoked, err := m.Auth.Revoke(c)
	if err != nil {
		return err
	}
	evs := make([]*Event, 0, len(revoked))
	for _, rv := range revoked {
		ev := &Event{
			Kind:    EvCapRevoked,
			Enclave: m.FW.Enclave(rv.Cap.Holder),
			Cap:     rv.Cap,
			Reason:  fmt.Sprintf("cap %d revoked", rv.Cap.ID),
		}
		switch rv.Cap.Kind {
		case authority.KindMemory:
			ev.Extents = []hw.Extent{{Start: rv.Scope.Start, Size: rv.Scope.Size}}
		case authority.KindXemem:
			ev.SegID = rv.Scope.SegID
			// Attach keys (no remove right, unlike owner keys) withdraw
			// the segment's frames from the consumer's context.
			if rv.Cap.Rights&authority.RightRemove == 0 {
				ev.Extents = segExts
			}
		case authority.KindIPI:
			m.removeGrant(rv.Cap.Holder, ipiKey{rv.Scope.Dest, rv.Scope.Vector})
			ev.DestCore = rv.Scope.Dest
			ev.Vector = rv.Scope.Vector
		}
		evs = append(evs, ev)
	}
	// A recursive revocation is one administrative act: deliver it as a
	// batch so each affected holder eats one coalesced shootdown instead of
	// one per revoked key.
	return m.Bus.EmitBatch(evs)
}
