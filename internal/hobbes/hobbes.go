// Package hobbes simulates the Hobbes OS/R master control process: the
// node-wide coordinator for enclave lifecycle, cross-enclave resource
// sharing, application composition, and the resource-management event bus
// that the Covirt controller module hooks into.
package hobbes

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/trace"
	"covirt/internal/xemem"
)

// EventKind classifies resource-management events on the Hobbes bus.
type EventKind int

// Event kinds. Pre events fire before the affected enclave can observe the
// new resource (protection layers map first); Post events fire after the
// enclave has relinquished a resource (protection layers unmap and flush,
// then the operation completes).
const (
	EvEnclaveCreated EventKind = iota
	EvEnclaveBootPre
	EvEnclaveBooted
	EvEnclaveCrashed
	EvEnclaveDestroyed
	EvMemAddPre
	EvMemRemovePost
	EvCPUAddPre
	EvCPURemovePost
	EvXememAttachPre
	EvXememDetachPost
	EvIPIGrant
	EvIPIRevoke
	// Supervision lifecycle (emitted by internal/supervisor): a watchdog
	// hang verdict, a restart attempt beginning, a successful re-admission,
	// and the terminal escalation when the restart budget is exhausted.
	EvEnclaveHung
	EvEnclaveRestarting
	EvEnclaveRecovered
	EvEnclaveQuarantined
)

// String names the event kind.
func (k EventKind) String() string {
	names := []string{
		"enclave-created", "enclave-boot-pre", "enclave-booted",
		"enclave-crashed", "enclave-destroyed", "mem-add-pre",
		"mem-remove-post", "cpu-add-pre", "cpu-remove-post",
		"xemem-attach-pre", "xemem-detach-post",
		"ipi-grant", "ipi-revoke",
		"enclave-hung", "enclave-restarting",
		"enclave-recovered", "enclave-quarantined",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one resource-management notification.
type Event struct {
	Kind     EventKind
	Enclave  *pisces.Enclave // affected enclave (consumer for XEMEM events)
	Extents  []hw.Extent
	SegID    uint64
	DestCore int   // IPI grant/revoke: machine core id
	Core     int   // CPU add/remove: machine core id
	Vector   uint8 // IPI grant/revoke
	Reason   string
	// Cost accumulates management-plane cycles spent by handlers; callers
	// on synchronous paths (longcalls) charge it to the waiting guest.
	Cost uint64
}

// Handler processes an event. An error from a Pre handler aborts the
// triggering operation.
type Handler func(ev *Event) error

// Bus is the synchronous event bus.
type Bus struct {
	mu       sync.Mutex //covirt:guards handlers
	handlers []Handler
	tracer   *trace.Buffer
}

// Subscribe appends h; handlers run in subscription order.
func (b *Bus) Subscribe(h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers = append(b.handlers, h)
}

// SetTracer routes every emitted event into the flight recorder as an
// "ev:<kind>" record. A nil buffer disables bus tracing.
func (b *Bus) SetTracer(t *trace.Buffer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = t
}

// snapshot copies the handler list and tracer under the lock so Emit can
// run the handlers (which may Subscribe re-entrantly) without holding it.
func (b *Bus) snapshot() ([]Handler, *trace.Buffer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Handler(nil), b.handlers...), b.tracer
}

// Emit delivers ev to all handlers, stopping at the first error.
func (b *Bus) Emit(ev *Event) error {
	handlers, tracer := b.snapshot()
	if tracer != nil {
		encID := -1
		if ev.Enclave != nil {
			encID = ev.Enclave.ID
		}
		tracer.Record(-1, 0, "ev:"+ev.Kind.String(), "enclave %d %s", encID, ev.Reason)
	}
	for _, h := range handlers {
		if err := h(ev); err != nil {
			return err
		}
	}
	return nil
}

// Master is the Hobbes master control process.
type Master struct {
	FW  *pisces.Framework
	Reg *xemem.Registry
	Bus *Bus

	//covirt:guards ipiGrant
	mu       sync.Mutex
	ipiGrant map[int]map[ipiKey]bool // enclave id -> granted (core,vector)
}

type ipiKey struct {
	dest   int
	vector uint8
}

// NewMaster builds the master control process over a Pisces framework and
// bridges the framework's events onto the Hobbes bus.
func NewMaster(fw *pisces.Framework) *Master {
	m := &Master{
		FW:       fw,
		Reg:      xemem.NewRegistry(),
		Bus:      &Bus{},
		ipiGrant: make(map[int]map[ipiKey]bool),
	}
	fw.Subscribe(func(ev *pisces.Event) error { return m.onFrameworkEvent(ev) })
	return m
}

// onFrameworkEvent adapts Pisces lifecycle events to the Hobbes bus and
// performs master-control cleanup duties.
func (m *Master) onFrameworkEvent(ev *pisces.Event) error {
	kindMap := map[pisces.EventKind]EventKind{
		pisces.EvCreated:       EvEnclaveCreated,
		pisces.EvBootPre:       EvEnclaveBootPre,
		pisces.EvBooted:        EvEnclaveBooted,
		pisces.EvMemAddPre:     EvMemAddPre,
		pisces.EvMemRemovePost: EvMemRemovePost,
		pisces.EvCPUAddPre:     EvCPUAddPre,
		pisces.EvCPURemovePost: EvCPURemovePost,
		pisces.EvCrashed:       EvEnclaveCrashed,
		pisces.EvDestroyed:     EvEnclaveDestroyed,
	}
	hev := &Event{Kind: kindMap[ev.Kind], Enclave: ev.Enclave, Core: ev.Core, Reason: ev.Reason}
	if ev.Extent.Size > 0 {
		hev.Extents = []hw.Extent{ev.Extent}
	}
	if ev.Kind == pisces.EvCrashed || ev.Kind == pisces.EvDestroyed {
		// Reclaim the dead enclave's shared-memory footprint and notify
		// dependents (here: just record state; the Covirt controller
		// subscribes and unmaps consumers' protection contexts).
		owned, _ := m.Reg.CleanupEnclave(ev.Enclave.ID)
		for _, seg := range owned {
			hev.SegID = seg.ID
		}
		m.dropGrants(ev.Enclave.ID)
	}
	return m.Bus.Emit(hev)
}

// dropGrants forgets all IPI grants of a dead enclave.
func (m *Master) dropGrants(encID int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.ipiGrant, encID)
}

// GrantIPI allows enclave enc to send vector to machine core dest —
// Hobbes' globally-allocatable per-core IPI vector resource.
func (m *Master) GrantIPI(enc *pisces.Enclave, dest int, vector uint8) error {
	m.addGrant(enc.ID, ipiKey{dest, vector})
	return m.Bus.Emit(&Event{Kind: EvIPIGrant, Enclave: enc, DestCore: dest, Vector: vector})
}

// addGrant records a grant in the per-enclave whitelist under the lock
// (the bus emit must run outside it: handlers call back into the master).
func (m *Master) addGrant(encID int, k ipiKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ipiGrant[encID]
	if g == nil {
		g = make(map[ipiKey]bool)
		m.ipiGrant[encID] = g
	}
	g[k] = true
}

// RevokeIPI withdraws a grant.
func (m *Master) RevokeIPI(enc *pisces.Enclave, dest int, vector uint8) error {
	m.removeGrant(enc.ID, ipiKey{dest, vector})
	return m.Bus.Emit(&Event{Kind: EvIPIRevoke, Enclave: enc, DestCore: dest, Vector: vector})
}

// removeGrant deletes one grant under the lock.
func (m *Master) removeGrant(encID int, k ipiKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g := m.ipiGrant[encID]; g != nil {
		delete(g, k)
	}
}

// IPIGranted reports whether enc may send vector to dest.
func (m *Master) IPIGranted(encID, dest int, vector uint8) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.ipiGrant[encID]
	return g != nil && g[ipiKey{dest, vector}]
}
