package hobbes

import (
	"errors"
	"testing"

	"covirt/internal/hw"
	"covirt/internal/pisces"
)

func testFramework(t *testing.T) (*hw.Machine, *pisces.Framework) {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	ledger := pisces.NewLedger()
	for _, n := range m.Topo.Nodes {
		start := hw.AlignUp(n.MemBase, hw.PageSize2M)
		if err := ledger.DonateMemory(hw.Extent{Start: start, Size: 512 << 20, Node: n.ID}); err != nil {
			t.Fatal(err)
		}
		for _, c := range n.Cores[1:] {
			ledger.DonateCore(c)
		}
	}
	return m, pisces.NewFramework(m, ledger)
}

func TestBusOrderAndAbort(t *testing.T) {
	var b Bus
	var order []string
	b.Subscribe(func(ev *Event) error { order = append(order, "first"); return nil })
	b.Subscribe(func(ev *Event) error { order = append(order, "second"); return nil })
	if err := b.Emit(&Event{Kind: EvMemAddPre}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}

	sentinel := errors.New("abort")
	b.Subscribe(func(ev *Event) error { return sentinel })
	b.Subscribe(func(ev *Event) error { order = append(order, "never"); return nil })
	order = nil
	if err := b.Emit(&Event{}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	for _, o := range order {
		if o == "never" {
			t.Error("handler after aborting handler ran")
		}
	}
}

func TestEventKindNames(t *testing.T) {
	if EvXememAttachPre.String() != "xemem-attach-pre" {
		t.Errorf("name = %q", EvXememAttachPre)
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestMasterBridgesFrameworkEvents(t *testing.T) {
	_, fw := testFramework(t)
	m := NewMaster(fw)
	var kinds []EventKind
	m.Bus.Subscribe(func(ev *Event) error {
		kinds = append(kinds, ev.Kind)
		return nil
	})
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "e", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != EvEnclaveCreated {
		t.Fatalf("kinds = %v", kinds)
	}
	_ = enc
}

func TestIPIGrantTracking(t *testing.T) {
	_, fw := testFramework(t)
	m := NewMaster(fw)
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "e", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var granted, revoked int
	m.Bus.Subscribe(func(ev *Event) error {
		switch ev.Kind {
		case EvIPIGrant:
			granted++
		case EvIPIRevoke:
			revoked++
		}
		return nil
	})
	if m.IPIGranted(enc.ID, 5, 0x70) {
		t.Error("grant present before GrantIPI")
	}
	if err := m.GrantIPI(enc, 5, 0x70); err != nil {
		t.Fatal(err)
	}
	if !m.IPIGranted(enc.ID, 5, 0x70) {
		t.Error("grant missing")
	}
	if m.IPIGranted(enc.ID, 5, 0x71) || m.IPIGranted(enc.ID, 6, 0x70) {
		t.Error("grant leaked to other vector/core")
	}
	if err := m.RevokeIPI(enc, 5, 0x70); err != nil {
		t.Fatal(err)
	}
	if m.IPIGranted(enc.ID, 5, 0x70) {
		t.Error("grant survived revoke")
	}
	if granted != 1 || revoked != 1 {
		t.Errorf("events: granted=%d revoked=%d", granted, revoked)
	}
}

func TestMasterCleansUpOnDestroy(t *testing.T) {
	_, fw := testFramework(t)
	m := NewMaster(fw)
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "e", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Segment owned by the enclave plus a standing IPI grant.
	ownerMem, ok := enc.CapForAddr(enc.Base())
	if !ok {
		t.Fatal("enclave holds no memory capability for its base")
	}
	if _, err := m.Reg.Make(123, ownerMem, []hw.Extent{{Start: enc.Base(), Size: 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	if err := m.GrantIPI(enc, 3, 0x66); err != nil {
		t.Fatal(err)
	}
	if err := fw.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	if m.Reg.Count() != 0 {
		t.Error("dead enclave's segments survived")
	}
	if m.IPIGranted(enc.ID, 3, 0x66) {
		t.Error("dead enclave's IPI grants survived")
	}
}
