// Package xemem simulates the XEMEM shared-memory system used by the
// Hobbes OS/R for all inter-enclave communication: named segments of
// physical memory exported by one OS/R instance and attachable by others,
// coordinated through a node-local name service.
//
// Consistent with the real system, XEMEM here deals in page-frame extent
// lists: exporting registers the frames backing a segment; attaching hands
// the consumer the frame list so it can map the memory into its own
// context. The management-plane transitions around attach and detach are
// the hook points the Covirt controller intercepts.
package xemem

import (
	"errors"
	"fmt"
	"sync"

	"covirt/internal/hw"
)

// Well-known errors.
var (
	ErrNoSegment   = errors.New("xemem: no such segment")
	ErrNameTaken   = errors.New("xemem: name already registered")
	ErrNotAttached = errors.New("xemem: not attached")
)

// Segment is one exported shared-memory region.
type Segment struct {
	ID       uint64
	NameHash uint64
	Owner    int // exporting enclave id (0 = host OS)
	Extents  []hw.Extent

	attached map[int]int // consumer enclave id -> attach count
	removed  bool
}

// Registry is the node-local XEMEM name service, hosted by the master
// control process.
type Registry struct {
	mu     sync.Mutex
	byID   map[uint64]*Segment
	byName map[uint64]uint64
	nextID uint64
}

// NewRegistry returns an empty name service.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint64]*Segment), byName: make(map[uint64]uint64), nextID: 1}
}

// Make exports extents under nameHash on behalf of owner.
func (r *Registry) Make(nameHash uint64, owner int, extents []hw.Extent) (*Segment, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("xemem: empty segment")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.byName[nameHash]; taken {
		return nil, ErrNameTaken
	}
	s := &Segment{
		ID:       r.nextID,
		NameHash: nameHash,
		Owner:    owner,
		Extents:  append([]hw.Extent(nil), extents...),
		attached: make(map[int]int),
	}
	r.nextID++
	r.byID[s.ID] = s
	r.byName[nameHash] = s.ID
	return s, nil
}

// Get resolves a name to a segid.
func (r *Registry) Get(nameHash uint64) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byName[nameHash]
	if !ok {
		return 0, ErrNoSegment
	}
	return id, nil
}

// Lookup returns the segment with the given id.
func (r *Registry) Lookup(segid uint64) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	return s, nil
}

// Attach records consumer's attachment and returns the frame extents to
// transmit.
func (r *Registry) Attach(segid uint64, consumer int) ([]hw.Extent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok || s.removed {
		return nil, ErrNoSegment
	}
	s.attached[consumer]++
	return append([]hw.Extent(nil), s.Extents...), nil
}

// DetachStart begins a detach: it returns the extents the consumer must
// unmap but keeps the attachment recorded until DetachDone (the window the
// Covirt ordering rules are about).
func (r *Registry) DetachStart(segid uint64, consumer int) ([]hw.Extent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	if s.attached[consumer] == 0 {
		return nil, ErrNotAttached
	}
	return append([]hw.Extent(nil), s.Extents...), nil
}

// DetachDone completes a detach after the consumer has relinquished its
// mappings.
func (r *Registry) DetachDone(segid uint64, consumer int) ([]hw.Extent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	if s.attached[consumer] == 0 {
		return nil, ErrNotAttached
	}
	s.attached[consumer]--
	if s.attached[consumer] == 0 {
		delete(s.attached, consumer)
	}
	exts := append([]hw.Extent(nil), s.Extents...)
	if s.removed && len(s.attached) == 0 {
		delete(r.byID, s.ID)
		delete(r.byName, s.NameHash)
	}
	return exts, nil
}

// Remove unregisters a segment. If consumers remain attached the segment
// lingers (invisible to Get) until the last detach.
func (r *Registry) Remove(segid uint64, owner int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return ErrNoSegment
	}
	if s.Owner != owner {
		return fmt.Errorf("xemem: segment %d owned by %d, not %d", segid, s.Owner, owner)
	}
	s.removed = true
	delete(r.byName, s.NameHash)
	if len(s.attached) == 0 {
		delete(r.byID, s.ID)
	}
	return nil
}

// Attachments returns the consumers currently attached to segid.
func (r *Registry) Attachments(segid uint64) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(s.attached))
	for c := range s.attached {
		out = append(out, c)
	}
	return out
}

// CleanupEnclave drops all state belonging to a crashed/destroyed enclave:
// segments it owned and attachments it held. It returns the segments that
// were owned by the enclave (so dependents can be notified) and the extent
// lists of segments it was attached to (so protection layers can unmap).
func (r *Registry) CleanupEnclave(enclave int) (owned []*Segment, attachedExts []hw.Extent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, s := range r.byID {
		if s.Owner == enclave {
			owned = append(owned, s)
			delete(r.byID, id)
			delete(r.byName, s.NameHash)
			continue
		}
		if s.attached[enclave] > 0 {
			attachedExts = append(attachedExts, s.Extents...)
			delete(s.attached, enclave)
			if s.removed && len(s.attached) == 0 {
				delete(r.byID, id)
				delete(r.byName, s.NameHash)
			}
		}
	}
	return owned, attachedExts
}

// Count returns the number of live segments.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
