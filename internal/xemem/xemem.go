// Package xemem simulates the XEMEM shared-memory system used by the
// Hobbes OS/R for all inter-enclave communication: named segments of
// physical memory exported by one OS/R instance and attachable by others,
// coordinated through a node-local name service.
//
// Consistent with the real system, XEMEM here deals in page-frame extent
// lists: exporting registers the frames backing a segment; attaching hands
// the consumer the frame list so it can map the memory into its own
// context. The management-plane transitions around attach and detach are
// the hook points the Covirt controller intercepts.
//
// Authority is capability-based: exporting requires a memory capability
// covering the frames (proof the exporter was granted that memory), each
// segment carries an owner capability, and every attachment is a
// capability delegated from it — so revoking the owner key recursively
// revokes every consumer's attach key, and a segment whose owner enclave
// has died (generation bumped by RevokeHolder) can never be attached
// again, even while its registry record lingers.
package xemem

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

// Well-known errors.
var (
	ErrNoSegment   = errors.New("xemem: no such segment")
	ErrNameTaken   = errors.New("xemem: name already registered")
	ErrNotAttached = errors.New("xemem: not attached")
	// ErrStaleOwner rejects attaches to a segment whose owner enclave's
	// authority has been revoked (crash, quarantine, manual revocation)
	// but whose registry record has not yet been reaped.
	ErrStaleOwner = errors.New("xemem: segment owner revoked")
	// ErrDenied rejects an operation whose presented capability fails
	// verification (forged, revoked, wrong holder, insufficient rights, or
	// out-of-scope extents).
	ErrDenied = errors.New("xemem: capability check failed")
)

// attachment is one consumer's hold on a segment: a reference count plus
// the attach capability delegated from the segment owner key.
type attachment struct {
	count int
	cap   authority.Cap
}

// Segment is one exported shared-memory region.
type Segment struct {
	ID       uint64
	NameHash uint64
	Owner    int // exporting enclave id (0 = host OS)
	Extents  []hw.Extent

	// OwnerCap is the segment's owner capability (kind xemem, scoped to
	// ID). Remove must present it; attach keys are delegated from it.
	OwnerCap authority.Cap

	attached map[int]*attachment // consumer enclave id -> attachment
	removed  bool
}

// Registry is the node-local XEMEM name service, hosted by the master
// control process.
type Registry struct {
	auth   *authority.Table
	mu     sync.Mutex
	byID   map[uint64]*Segment
	byName map[uint64]uint64
	nextID uint64
}

// NewRegistry returns an empty name service minting its keys from auth.
func NewRegistry(auth *authority.Table) *Registry {
	return &Registry{
		auth:   auth,
		byID:   make(map[uint64]*Segment),
		byName: make(map[uint64]uint64),
		nextID: 1,
	}
}

// Make exports extents under nameHash. The caller must present a memory
// capability covering every extent — proof the exporter actually holds the
// frames it is sharing — and receives a segment owner capability (held by
// the same enclave) in s.OwnerCap.
func (r *Registry) Make(nameHash uint64, owner authority.Cap, extents []hw.Extent) (*Segment, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("xemem: empty segment")
	}
	for _, x := range extents {
		if !r.auth.Covers(owner, owner.Holder, authority.KindMemory, authority.RightMap,
			authority.MemScope(x.Start, x.Size)) {
			return nil, fmt.Errorf("%w: extent %v not covered by cap %d", ErrDenied, x, owner.ID)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.byName[nameHash]; taken {
		return nil, ErrNameTaken
	}
	s := &Segment{
		ID:       r.nextID,
		NameHash: nameHash,
		Owner:    owner.Holder,
		Extents:  append([]hw.Extent(nil), extents...),
		attached: make(map[int]*attachment),
	}
	s.OwnerCap = r.auth.Mint(owner.Holder, authority.KindXemem,
		authority.RightAttach|authority.RightRemove|authority.RightDelegate,
		authority.XememScope(s.ID), fmt.Sprintf("seg%d-owner", s.ID))
	r.nextID++
	r.byID[s.ID] = s
	r.byName[nameHash] = s.ID
	return s, nil
}

// Get resolves a name to a segid.
func (r *Registry) Get(nameHash uint64) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byName[nameHash]
	if !ok {
		return 0, ErrNoSegment
	}
	return id, nil
}

// Lookup returns the segment with the given id.
func (r *Registry) Lookup(segid uint64) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	return s, nil
}

// Attach records consumer's attachment, returning the frame extents to
// transmit and the consumer's attach capability (delegated from the
// segment owner key, so an owner-key revocation storm reaches every
// consumer). Attaches to a segment whose owner's authority has been
// revoked — a crashed or quarantined exporter whose record still lingers —
// fail with ErrStaleOwner.
func (r *Registry) Attach(segid uint64, consumer int) ([]hw.Extent, authority.Cap, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok || s.removed {
		return nil, authority.Cap{}, ErrNoSegment
	}
	if !r.auth.Alive(s.OwnerCap) {
		return nil, authority.Cap{}, ErrStaleOwner
	}
	a := s.attached[consumer]
	if a == nil {
		cap, err := r.auth.Delegate(s.OwnerCap, consumer, authority.RightAttach,
			authority.XememScope(s.ID), fmt.Sprintf("seg%d-attach-e%d", s.ID, consumer))
		if err != nil {
			return nil, authority.Cap{}, fmt.Errorf("%w: %v", ErrDenied, err)
		}
		a = &attachment{cap: cap}
		s.attached[consumer] = a
	}
	a.count++
	return append([]hw.Extent(nil), s.Extents...), a.cap, nil
}

// DetachStart begins a detach: it returns the extents the consumer must
// unmap but keeps the attachment recorded until DetachDone (the window the
// Covirt ordering rules are about).
func (r *Registry) DetachStart(segid uint64, consumer int) ([]hw.Extent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	if a := s.attached[consumer]; a == nil || a.count == 0 {
		return nil, ErrNotAttached
	}
	return append([]hw.Extent(nil), s.Extents...), nil
}

// DetachDone completes a detach after the consumer has relinquished its
// mappings. The final detach revokes the consumer's attach capability.
func (r *Registry) DetachDone(segid uint64, consumer int) ([]hw.Extent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, ErrNoSegment
	}
	a := s.attached[consumer]
	if a == nil || a.count == 0 {
		return nil, ErrNotAttached
	}
	a.count--
	if a.count == 0 {
		if r.auth.Alive(a.cap) {
			_, _ = r.auth.Revoke(a.cap)
		}
		delete(s.attached, consumer)
	}
	exts := append([]hw.Extent(nil), s.Extents...)
	r.reapLocked(s)
	return exts, nil
}

// reapLocked drops a removed segment once its last attachment is gone,
// revoking the owner key with it.
func (r *Registry) reapLocked(s *Segment) {
	if s.removed && len(s.attached) == 0 {
		if r.auth.Alive(s.OwnerCap) {
			_, _ = r.auth.Revoke(s.OwnerCap)
		}
		delete(r.byID, s.ID)
		delete(r.byName, s.NameHash)
	}
}

// Remove unregisters a segment; the caller must present the segment's
// owner capability. If consumers remain attached the segment lingers
// (invisible to Get) until the last detach.
func (r *Registry) Remove(segid uint64, owner authority.Cap) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return ErrNoSegment
	}
	if owner.ID != s.OwnerCap.ID ||
		!r.auth.Verify(owner, owner.Holder, authority.KindXemem, authority.RightRemove) {
		return fmt.Errorf("%w: segment %d not removable with cap %d", ErrDenied, segid, owner.ID)
	}
	s.removed = true
	delete(r.byName, s.NameHash)
	r.reapLocked(s)
	return nil
}

// OwnerCapOf resolves the owner capability of the segment owned by holder,
// for host services acting on a guest's behalf (the guest names a segid
// over the wire; the host resolves the backing key and verifies the caller
// is its holder).
func (r *Registry) OwnerCapOf(segid uint64, holder int) (authority.Cap, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return authority.Cap{}, ErrNoSegment
	}
	if s.Owner != holder {
		return authority.Cap{}, fmt.Errorf("%w: segment %d owned by %d, not %d",
			ErrDenied, segid, s.Owner, holder)
	}
	return s.OwnerCap, nil
}

// Attachments returns the consumers currently attached to segid.
func (r *Registry) Attachments(segid uint64) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(s.attached))
	for c := range s.attached {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ForceDrop removes a segment and all its attachments immediately — the
// revocation-storm path, called by the master after the owner key (and,
// recursively, every attach key) has been revoked. It returns the frame
// extents and the consumers that were attached (ascending), so protection
// layers can unmap each consumer's context.
func (r *Registry) ForceDrop(segid uint64) (exts []hw.Extent, consumers []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return nil, nil
	}
	for c := range s.attached {
		consumers = append(consumers, c)
	}
	sort.Ints(consumers)
	exts = append([]hw.Extent(nil), s.Extents...)
	delete(r.byID, s.ID)
	delete(r.byName, s.NameHash)
	return exts, consumers
}

// DropAttachment removes one consumer's attachment record immediately —
// the revocation path for a single attach key (its capability is revoked
// by the caller; this only reconciles the registry's bookkeeping).
func (r *Registry) DropAttachment(segid uint64, consumer int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[segid]
	if !ok {
		return
	}
	if s.attached[consumer] != nil {
		delete(s.attached, consumer)
		r.reapLocked(s)
	}
}

// CleanupEnclave drops all state belonging to a crashed/destroyed enclave:
// segments it owned and attachments it held. It returns the segments that
// were owned by the enclave (so dependents can be notified) and the extent
// lists of segments it was attached to (so protection layers can unmap).
// The capability table's RevokeHolder handles the keys themselves.
func (r *Registry) CleanupEnclave(enclave int) (owned []*Segment, attachedExts []hw.Extent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, s := range r.byID {
		if s.Owner == enclave {
			owned = append(owned, s)
			delete(r.byID, id)
			delete(r.byName, s.NameHash)
			continue
		}
		if a := s.attached[enclave]; a != nil && a.count > 0 {
			attachedExts = append(attachedExts, s.Extents...)
			delete(s.attached, enclave)
			r.reapLocked(s)
		}
	}
	return owned, attachedExts
}

// Count returns the number of live segments.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
