package xemem

import (
	"testing"
	"testing/quick"

	"covirt/internal/hw"
)

func ext(start, size uint64) []hw.Extent {
	return []hw.Extent{{Start: start, Size: size, Node: 0}}
}

func TestMakeGetAttach(t *testing.T) {
	r := NewRegistry()
	seg, err := r.Make(111, 1, ext(0x100000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Get(111)
	if err != nil || id != seg.ID {
		t.Fatalf("Get = %d, %v", id, err)
	}
	exts, err := r.Attach(id, 2)
	if err != nil || len(exts) != 1 || exts[0].Start != 0x100000 {
		t.Fatalf("Attach = %v, %v", exts, err)
	}
	if got := r.Attachments(id); len(got) != 1 || got[0] != 2 {
		t.Errorf("attachments = %v", got)
	}
}

func TestMakeValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Make(1, 1, nil); err == nil {
		t.Error("empty segment accepted")
	}
	if _, err := r.Make(5, 1, ext(0, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Make(5, 2, ext(0x1000, 4096)); err != ErrNameTaken {
		t.Error("duplicate name accepted")
	}
}

func TestLookupErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Get(42); err != ErrNoSegment {
		t.Error("missing name lookup succeeded")
	}
	if _, err := r.Attach(9, 1); err != ErrNoSegment {
		t.Error("attach to missing segment succeeded")
	}
	if _, err := r.DetachStart(9, 1); err != ErrNoSegment {
		t.Error("detach of missing segment succeeded")
	}
	if _, err := r.Lookup(9); err != ErrNoSegment {
		t.Error("lookup of missing segment succeeded")
	}
}

func TestDetachProtocol(t *testing.T) {
	r := NewRegistry()
	seg, _ := r.Make(1, 1, ext(0, 1<<21))
	if _, err := r.DetachStart(seg.ID, 2); err != ErrNotAttached {
		t.Error("detach-start without attach succeeded")
	}
	_, _ = r.Attach(seg.ID, 2)
	if _, err := r.DetachStart(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	// DetachStart does not drop the attachment.
	if len(r.Attachments(seg.ID)) != 1 {
		t.Error("detach-start dropped attachment early")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 0 {
		t.Error("attachment survived detach-done")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != ErrNotAttached {
		t.Error("double detach-done succeeded")
	}
}

func TestRemoveSemantics(t *testing.T) {
	r := NewRegistry()
	seg, _ := r.Make(1, 1, ext(0, 1<<21))
	if err := r.Remove(seg.ID, 99); err == nil {
		t.Error("remove by non-owner succeeded")
	}
	_, _ = r.Attach(seg.ID, 2)
	if err := r.Remove(seg.ID, 1); err != nil {
		t.Fatal(err)
	}
	// Removed-but-attached segments are invisible to Get but the consumer
	// can still complete its detach.
	if _, err := r.Get(1); err != ErrNoSegment {
		t.Error("removed segment still resolvable by name")
	}
	if r.Count() != 1 {
		t.Errorf("count = %d; lingering segment expected", r.Count())
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Errorf("count = %d after final detach", r.Count())
	}
	// The name becomes reusable.
	if _, err := r.Make(1, 3, ext(0x4000, 4096)); err != nil {
		t.Errorf("name not reusable: %v", err)
	}
}

func TestAttachCountNesting(t *testing.T) {
	r := NewRegistry()
	seg, _ := r.Make(1, 1, ext(0, 1<<21))
	_, _ = r.Attach(seg.ID, 2)
	_, _ = r.Attach(seg.ID, 2) // nested attach by same consumer
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 1 {
		t.Error("nested attach lost")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 0 {
		t.Error("attachment not cleared")
	}
}

func TestCleanupEnclave(t *testing.T) {
	r := NewRegistry()
	segA, _ := r.Make(1, 1, ext(0, 1<<21))     // owned by 1
	segB, _ := r.Make(2, 2, ext(1<<21, 1<<21)) // owned by 2
	_, _ = r.Attach(segB.ID, 1)                // 1 attached to B
	owned, attached := r.CleanupEnclave(1)
	if len(owned) != 1 || owned[0].ID != segA.ID {
		t.Errorf("owned = %v", owned)
	}
	if len(attached) != 1 || attached[0].Start != 1<<21 {
		t.Errorf("attached = %v", attached)
	}
	if _, err := r.Get(1); err != ErrNoSegment {
		t.Error("dead enclave's segment still registered")
	}
	if len(r.Attachments(segB.ID)) != 0 {
		t.Error("dead enclave still attached")
	}
	// Survivor's segment is untouched.
	if _, err := r.Get(2); err != nil {
		t.Error("survivor's segment lost")
	}
}

// Property: attach/detach counts always balance — after any interleaving,
// completing all detaches leaves zero attachments.
func TestAttachBalanceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRegistry()
		seg, err := r.Make(1, 1, ext(0, 1<<21))
		if err != nil {
			return false
		}
		counts := map[int]int{}
		for _, op := range ops {
			consumer := int(op%4) + 10
			if op%2 == 0 {
				if _, err := r.Attach(seg.ID, consumer); err == nil {
					counts[consumer]++
				}
			} else if counts[consumer] > 0 {
				if _, err := r.DetachDone(seg.ID, consumer); err == nil {
					counts[consumer]--
				}
			}
		}
		for c, n := range counts {
			for i := 0; i < n; i++ {
				if _, err := r.DetachDone(seg.ID, c); err != nil {
					return false
				}
			}
		}
		return len(r.Attachments(seg.ID)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
