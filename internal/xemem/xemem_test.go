package xemem

import (
	"errors"
	"testing"
	"testing/quick"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

func ext(start, size uint64) []hw.Extent {
	return []hw.Extent{{Start: start, Size: size, Node: 0}}
}

func newTestReg() (*Registry, *authority.Table) {
	tab := authority.NewTable()
	return NewRegistry(tab), tab
}

// memCap mints a memory capability for holder over [start, start+size),
// standing in for the per-extent keys pisces delegates at enclave creation.
func memCap(tab *authority.Table, holder int, start, size uint64) authority.Cap {
	return tab.Mint(holder, authority.KindMemory, authority.RightsAll,
		authority.MemScope(start, size), "test-mem")
}

func TestMakeGetAttach(t *testing.T) {
	r, tab := newTestReg()
	seg, err := r.Make(111, memCap(tab, 1, 0x100000, 1<<20), ext(0x100000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Get(111)
	if err != nil || id != seg.ID {
		t.Fatalf("Get = %d, %v", id, err)
	}
	exts, cap2, err := r.Attach(id, 2)
	if err != nil || len(exts) != 1 || exts[0].Start != 0x100000 {
		t.Fatalf("Attach = %v, %v", exts, err)
	}
	if !tab.Verify(cap2, 2, authority.KindXemem, authority.RightAttach) {
		t.Error("attach capability does not verify for the consumer")
	}
	if got := r.Attachments(id); len(got) != 1 || got[0] != 2 {
		t.Errorf("attachments = %v", got)
	}
}

func TestMakeValidation(t *testing.T) {
	r, tab := newTestReg()
	if _, err := r.Make(1, memCap(tab, 1, 0, 1<<20), nil); err == nil {
		t.Error("empty segment accepted")
	}
	if _, err := r.Make(5, memCap(tab, 1, 0, 4096), ext(0, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Make(5, memCap(tab, 2, 0x1000, 4096), ext(0x1000, 4096)); err != ErrNameTaken {
		t.Error("duplicate name accepted")
	}
}

func TestMakeRequiresCoveringCap(t *testing.T) {
	r, tab := newTestReg()
	// Key covers only the first page; exporting two pages must be denied.
	c := memCap(tab, 1, 0, 4096)
	if _, err := r.Make(7, c, ext(0, 8192)); !errors.Is(err, ErrDenied) {
		t.Fatalf("Make outside key scope = %v, want ErrDenied", err)
	}
	// A revoked key conveys nothing.
	if _, err := tab.Revoke(c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Make(7, c, ext(0, 4096)); !errors.Is(err, ErrDenied) {
		t.Fatalf("Make with revoked key = %v, want ErrDenied", err)
	}
}

// Regression: attaching to a segment whose owner enclave was quarantined or
// removed (its keys revoked wholesale) must fail instead of handing out
// mappings of reclaimed frames.
func TestAttachStaleOwner(t *testing.T) {
	r, tab := newTestReg()
	seg, err := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
	if err != nil {
		t.Fatal(err)
	}
	tab.RevokeHolder(1) // owner enclave dies: every key it held is killed
	if _, _, err := r.Attach(seg.ID, 2); err != ErrStaleOwner {
		t.Fatalf("attach to stale-owner segment = %v, want ErrStaleOwner", err)
	}
}

func TestLookupErrors(t *testing.T) {
	r, _ := newTestReg()
	if _, err := r.Get(42); err != ErrNoSegment {
		t.Error("missing name lookup succeeded")
	}
	if _, _, err := r.Attach(9, 1); err != ErrNoSegment {
		t.Error("attach to missing segment succeeded")
	}
	if _, err := r.DetachStart(9, 1); err != ErrNoSegment {
		t.Error("detach of missing segment succeeded")
	}
	if _, err := r.Lookup(9); err != ErrNoSegment {
		t.Error("lookup of missing segment succeeded")
	}
}

func TestDetachProtocol(t *testing.T) {
	r, tab := newTestReg()
	seg, _ := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
	if _, err := r.DetachStart(seg.ID, 2); err != ErrNotAttached {
		t.Error("detach-start without attach succeeded")
	}
	_, _, _ = r.Attach(seg.ID, 2)
	if _, err := r.DetachStart(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	// DetachStart does not drop the attachment.
	if len(r.Attachments(seg.ID)) != 1 {
		t.Error("detach-start dropped attachment early")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 0 {
		t.Error("attachment survived detach-done")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != ErrNotAttached {
		t.Error("double detach-done succeeded")
	}
}

func TestDetachRevokesAttachKey(t *testing.T) {
	r, tab := newTestReg()
	seg, _ := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
	_, cap2, err := r.Attach(seg.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if tab.Alive(cap2) {
		t.Error("attach key survived final detach")
	}
}

func TestRemoveSemantics(t *testing.T) {
	r, tab := newTestReg()
	seg, _ := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
	if _, err := r.OwnerCapOf(seg.ID, 99); err == nil {
		t.Error("non-owner resolved the owner key")
	}
	if err := r.Remove(seg.ID, authority.Cap{}); err == nil {
		t.Error("remove without the owner key succeeded")
	}
	_, _, _ = r.Attach(seg.ID, 2)
	oc, err := r.OwnerCapOf(seg.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(seg.ID, oc); err != nil {
		t.Fatal(err)
	}
	// Removed-but-attached segments are invisible to Get but the consumer
	// can still complete its detach.
	if _, err := r.Get(1); err != ErrNoSegment {
		t.Error("removed segment still resolvable by name")
	}
	if r.Count() != 1 {
		t.Errorf("count = %d; lingering segment expected", r.Count())
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Errorf("count = %d after final detach", r.Count())
	}
	// The name becomes reusable.
	if _, err := r.Make(1, memCap(tab, 3, 0x4000, 4096), ext(0x4000, 4096)); err != nil {
		t.Errorf("name not reusable: %v", err)
	}
}

func TestAttachCountNesting(t *testing.T) {
	r, tab := newTestReg()
	seg, _ := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
	_, _, _ = r.Attach(seg.ID, 2)
	_, _, _ = r.Attach(seg.ID, 2) // nested attach by same consumer
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 1 {
		t.Error("nested attach lost")
	}
	if _, err := r.DetachDone(seg.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(r.Attachments(seg.ID)) != 0 {
		t.Error("attachment not cleared")
	}
}

func TestCleanupEnclave(t *testing.T) {
	r, tab := newTestReg()
	segA, _ := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))         // owned by 1
	segB, _ := r.Make(2, memCap(tab, 2, 1<<21, 1<<21), ext(1<<21, 1<<21)) // owned by 2
	_, _, _ = r.Attach(segB.ID, 1)                                        // 1 attached to B
	owned, attached := r.CleanupEnclave(1)
	if len(owned) != 1 || owned[0].ID != segA.ID {
		t.Errorf("owned = %v", owned)
	}
	if len(attached) != 1 || attached[0].Start != 1<<21 {
		t.Errorf("attached = %v", attached)
	}
	if _, err := r.Get(1); err != ErrNoSegment {
		t.Error("dead enclave's segment still registered")
	}
	if len(r.Attachments(segB.ID)) != 0 {
		t.Error("dead enclave still attached")
	}
	// Survivor's segment is untouched.
	if _, err := r.Get(2); err != nil {
		t.Error("survivor's segment lost")
	}
}

// Property: attach/detach counts always balance — after any interleaving,
// completing all detaches leaves zero attachments.
func TestAttachBalanceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r, tab := newTestReg()
		seg, err := r.Make(1, memCap(tab, 1, 0, 1<<21), ext(0, 1<<21))
		if err != nil {
			return false
		}
		counts := map[int]int{}
		for _, op := range ops {
			consumer := int(op%4) + 10
			if op%2 == 0 {
				if _, _, err := r.Attach(seg.ID, consumer); err == nil {
					counts[consumer]++
				}
			} else if counts[consumer] > 0 {
				if _, err := r.DetachDone(seg.ID, consumer); err == nil {
					counts[consumer]--
				}
			}
		}
		for c, n := range counts {
			for i := 0; i < n; i++ {
				if _, err := r.DetachDone(seg.ID, c); err != nil {
					return false
				}
			}
		}
		return len(r.Attachments(seg.ID)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
