package hw

import "sync"

// Well-known model-specific register numbers used by the simulation. The
// values match the x86 architectural MSR numbers so traces read naturally.
const (
	MSR_IA32_APIC_BASE    uint32 = 0x1B
	MSR_IA32_FEATURE_CTL  uint32 = 0x3A
	MSR_IA32_MISC_ENABLE  uint32 = 0x1A0
	MSR_IA32_PAT          uint32 = 0x277
	MSR_IA32_EFER         uint32 = 0xC0000080
	MSR_IA32_STAR         uint32 = 0xC0000081
	MSR_IA32_LSTAR        uint32 = 0xC0000082
	MSR_IA32_FS_BASE      uint32 = 0xC0000100
	MSR_IA32_GS_BASE      uint32 = 0xC0000101
	MSR_IA32_TSC_DEADLINE uint32 = 0x6E0
)

// MSRFile is one CPU's model-specific register file. Reads of never-written
// MSRs return zero, as most architectural MSRs reset to zero.
type MSRFile struct {
	mu   sync.Mutex
	regs map[uint32]uint64
}

// NewMSRFile returns an empty register file with architectural defaults.
func NewMSRFile() *MSRFile {
	m := &MSRFile{regs: make(map[uint32]uint64)}
	m.regs[MSR_IA32_EFER] = 1<<8 | 1<<10 // LME|LMA: we boot straight into long mode
	m.regs[MSR_IA32_APIC_BASE] = 0xFEE00000 | 1<<11
	return m
}

// Read returns the value of msr.
func (m *MSRFile) Read(msr uint32) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.regs[msr]
}

// Write stores val into msr.
func (m *MSRFile) Write(msr uint32, val uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regs[msr] = val
}
