package hw

import (
	"strings"
	"testing"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	spec := DefaultSpec()
	spec.MemPerNode = 1 << 30 // keep test machines light
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestMachineLayout(t *testing.T) {
	m := testMachine(t)
	if len(m.CPUs) != 12 {
		t.Fatalf("cpus = %d, want 12", len(m.CPUs))
	}
	if m.Topo.NodeOfCore(0) != 0 || m.Topo.NodeOfCore(6) != 1 {
		t.Error("core-to-node mapping wrong")
	}
	if m.Topo.NodeOfCore(99) != -1 {
		t.Error("NodeOfCore(absent) should be -1")
	}
	if m.CPU(5) == nil || m.CPU(12) != nil || m.CPU(-1) != nil {
		t.Error("CPU() bounds wrong")
	}
	// Node 0 memory starts at 1 MiB (legacy hole), node 1 at the stride.
	if m.Topo.Nodes[0].MemBase != 1<<20 {
		t.Errorf("node0 base = %#x", m.Topo.Nodes[0].MemBase)
	}
	if m.Topo.Nodes[1].MemBase != nodeStride {
		t.Errorf("node1 base = %#x", m.Topo.Nodes[1].MemBase)
	}
}

func TestComputeAdvancesTSC(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	if err := c.Compute(1000); err != nil {
		t.Fatal(err)
	}
	if c.TSC != 1000*m.Costs.Compute {
		t.Errorf("TSC = %d", c.TSC)
	}
}

func TestMemAccessChargesWalkOnMiss(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	addr := m.Topo.Nodes[0].MemBase + 0x1000
	if err := c.MemAccess(addr, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	missCost := c.TSC
	before := c.TSC
	if err := c.MemAccess(addr, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	hitCost := c.TSC - before
	if hitCost >= missCost {
		t.Errorf("hit cost %d >= miss cost %d", hitCost, missCost)
	}
	wantMiss := uint64(c.GuestWalkLevels)*m.Costs.WalkPerLevel + m.Costs.MemDRAM
	if missCost != wantMiss {
		t.Errorf("miss cost = %d, want %d", missCost, wantMiss)
	}
	if hitCost != m.Costs.MemDRAM {
		t.Errorf("hit cost = %d, want %d", hitCost, m.Costs.MemDRAM)
	}
}

func TestNUMARemotePenalty(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0) // node 0
	local := m.Topo.Nodes[0].MemBase + 0x2000
	remote := m.Topo.Nodes[1].MemBase + 0x2000
	// Warm both translations so only data cost differs.
	if err := c.MemAccess(local, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	if err := c.MemAccess(remote, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	t0 := c.TSC
	if err := c.MemAccess(local, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	localCost := c.TSC - t0
	t0 = c.TSC
	if err := c.MemAccess(remote, false, AccessDRAM); err != nil {
		t.Fatal(err)
	}
	remoteCost := c.TSC - t0
	if remoteCost <= localCost {
		t.Errorf("remote %d <= local %d; NUMA penalty missing", remoteCost, localCost)
	}
	want := m.Costs.MemDRAM * m.Costs.RemoteNumer / m.Costs.RemoteDenom
	if remoteCost != want {
		t.Errorf("remote cost = %d, want %d", remoteCost, want)
	}
}

func TestMemStreamCostScalesWithLength(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	base := m.Topo.Nodes[0].MemBase
	if err := c.MemStream(base, 1<<16, false); err != nil {
		t.Fatal(err)
	}
	short := c.TSC
	c2 := m.CPU(1)
	if err := c2.MemStream(base+1<<20, 1<<20, false); err != nil {
		t.Fatal(err)
	}
	long := c2.TSC
	if long < short*10 {
		t.Errorf("1MiB stream (%d) not ~16x of 64KiB stream (%d)", long, short)
	}
}

func TestGuardedReadWrite(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	addr := m.Topo.Nodes[0].MemBase + 0x5000
	if err := c.Write64G(addr, 42); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read64G(addr)
	if err != nil || v != 42 {
		t.Fatalf("Read64G = %d, %v", v, err)
	}
	p := []byte("hello co-kernels")
	if err := c.WriteBytesG(addr+64, p); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(p))
	if err := c.ReadBytesG(addr+64, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(p) {
		t.Errorf("round trip = %q", got)
	}
}

func TestNativeWildAccessCrashesMachine(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	// Unbacked physical address: native access is an unhandleable abort.
	err := c.MemAccess(0x0, true, AccessHot)
	if !IsFault(err, FaultMachineCrashed) {
		t.Fatalf("err = %v, want machine crash", err)
	}
	if !m.Crashed() {
		t.Fatal("machine not crashed")
	}
	if !strings.Contains(m.CrashReason(), "bus-error") {
		t.Errorf("crash reason = %q", m.CrashReason())
	}
	// Every other CPU is dead too.
	if err := m.CPU(7).Compute(1); !IsFault(err, FaultMachineCrashed) {
		t.Errorf("other cpu err = %v, want machine crash", err)
	}
}

func TestNativeWildWriteCorruptsOtherMemory(t *testing.T) {
	m := testMachine(t)
	victim := m.Topo.Nodes[1].MemBase + 0x100 // "someone else's" memory
	if err := m.Mem.Write64(victim, 0x1111); err != nil {
		t.Fatal(err)
	}
	c := m.CPU(0)
	// Backed but foreign: native execution happily corrupts it.
	if err := c.Write64G(victim, 0x6666); err != nil {
		t.Fatalf("wild write errored: %v", err)
	}
	v, err := m.Mem.Read64(victim)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x6666 {
		t.Errorf("victim = %#x, want corruption to 0x6666", v)
	}
}

func TestIPIDelivery(t *testing.T) {
	m := testMachine(t)
	src, dst := m.CPU(0), m.CPU(3)
	var got []uint8
	dst.SetIRQHandler(func(_ *CPU, v uint8, ext bool) {
		if ext {
			t.Error("IPI marked external")
		}
		got = append(got, v)
	})
	if err := src.SendIPI(3, 0x40); err != nil {
		t.Fatal(err)
	}
	if err := dst.Compute(1); err != nil { // delivery happens at dst's boundary
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0x40 {
		t.Fatalf("delivered = %v", got)
	}
	if dst.IRQsTaken != 1 {
		t.Errorf("IRQsTaken = %d", dst.IRQsTaken)
	}
	// IPI to a nonexistent core is dropped silently.
	if err := src.SendIPI(99, 0x41); err != nil {
		t.Errorf("IPI to absent core: %v", err)
	}
}

func TestInterruptPriority(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	var order []uint8
	c.SetIRQHandler(func(_ *CPU, v uint8, _ bool) { order = append(order, v) })
	c.APIC.Raise(0x30, false)
	c.APIC.Raise(0x80, false)
	c.APIC.Raise(0x31, false)
	if err := c.Compute(1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0x80 || order[1] != 0x31 || order[2] != 0x30 {
		t.Errorf("delivery order = %v, want high vectors first", order)
	}
}

func TestNMIHandling(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	nmis := 0
	c.SetNMIHandler(func(_ *CPU) { nmis++ })
	c.APIC.RaiseNMI()
	c.APIC.RaiseNMI()
	if err := c.Compute(1); err != nil {
		t.Fatal(err)
	}
	if nmis != 2 {
		t.Errorf("nmis = %d, want 2", nmis)
	}
	if c.APIC.NMICount != 2 {
		t.Errorf("NMICount = %d", c.APIC.NMICount)
	}
}

func TestTimerFires(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	ticks := 0
	c.SetIRQHandler(func(_ *CPU, v uint8, ext bool) {
		if v == 0xEF && ext {
			ticks++
		}
	})
	c.APIC.ArmTimer(c.TSC, 10_000, 0xEF)
	for i := 0; i < 100; i++ {
		if err := c.Compute(500); err != nil {
			t.Fatal(err)
		}
	}
	if ticks < 3 {
		t.Errorf("ticks = %d, want several over 50k+ cycles", ticks)
	}
	c.APIC.DisarmTimer()
	before := ticks
	for i := 0; i < 100; i++ {
		if err := c.Compute(500); err != nil {
			t.Fatal(err)
		}
	}
	if ticks != before {
		t.Error("timer fired while disarmed")
	}
}

func TestKillStopsCPU(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	c.Kill()
	if err := c.Compute(1); !IsFault(err, FaultEnclaveKilled) {
		t.Fatalf("err = %v, want enclave-killed", err)
	}
	c.Revive()
	if err := c.Compute(1); err != nil {
		t.Fatalf("after Revive: %v", err)
	}
}

func TestMSRAndIONative(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	if err := c.WRMSR(MSR_IA32_LSTAR, 0xFFFF800000001000); err != nil {
		t.Fatal(err)
	}
	v, err := c.RDMSR(MSR_IA32_LSTAR)
	if err != nil || v != 0xFFFF800000001000 {
		t.Fatalf("RDMSR = %#x, %v", v, err)
	}
	sink := &SerialSink{}
	m.Ports.Register(PortSerialCOM1, sink)
	for _, b := range []byte("ok") {
		if err := c.IOOut(PortSerialCOM1, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.String() != "ok" {
		t.Errorf("serial = %q", sink.String())
	}
	if v, err := c.IOIn(0x9999); err != nil || v != 0xFFFFFFFF {
		t.Errorf("floating port read = %#x, %v", v, err)
	}
}

func TestDoubleFaultCrashesNativeMachine(t *testing.T) {
	m := testMachine(t)
	err := m.CPU(0).RaiseDoubleFault("stack overflow in idt handler")
	if !IsFault(err, FaultMachineCrashed) {
		t.Fatalf("err = %v", err)
	}
	if !m.Crashed() {
		t.Fatal("machine survived native #DF")
	}
}

func TestFaultLog(t *testing.T) {
	m := testMachine(t)
	m.RecordFault(Fault{Kind: FaultEPTViolation, Addr: 0x123, CPU: 2})
	m.RecordFault(Fault{Kind: FaultGP, CPU: 3})
	fs := m.Faults()
	if len(fs) != 2 || fs[0].Kind != FaultEPTViolation || fs[1].CPU != 3 {
		t.Errorf("faults = %+v", fs)
	}
}

func TestIdleWakesOnEvent(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	done := make(chan struct{})
	seen := make(chan uint8, 1)
	c.SetIRQHandler(func(_ *CPU, v uint8, _ bool) { seen <- v })
	go func() {
		//covirt:allow physmem-errcheck delivery is observed via the seen channel
		m.CPU(1).SendIPI(0, 0x55)
	}()
	// Idle until the IPI arrives (WaitEvent returns once signalled).
	for {
		if err := c.Idle(done); err != nil {
			t.Errorf("Idle: %v", err)
			return
		}
		select {
		case v := <-seen:
			if v != 0x55 {
				t.Errorf("vector = %#x", v)
			}
			return
		default:
		}
	}
}

func TestCPUIDAndTSC(t *testing.T) {
	m := testMachine(t)
	c := m.CPU(0)
	if err := c.CPUID(); err != nil {
		t.Fatal(err)
	}
	t1 := c.ReadTSC()
	t2 := c.ReadTSC()
	if t2 <= t1 {
		t.Error("TSC not monotonic across rdtsc")
	}
}
