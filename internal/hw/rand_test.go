package hw

import "testing"

// Two generators with the same seed must produce identical streams —
// the property the simulation's cycle determinism rests on.
func TestRandDeterministic(t *testing.T) {
	a := NewRand(12345)
	b := NewRand(12345)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("step %d: %#x != %#x", i, va, vb)
		}
	}
	c := NewRand(54321)
	if a0, c0 := NewRand(12345), c; a0.Next() == c0.Next() {
		t.Error("different seeds produced the same first value")
	}
}

// A zero seed is the xorshift fixed point; NewRand must remap it.
func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Next() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandUint64n(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
	}
}
