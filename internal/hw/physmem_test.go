package hw

import (
	"testing"
	"testing/quick"
)

func TestRegionAddFindRemove(t *testing.T) {
	pm := NewPhysMem()
	r, err := pm.AddRegion(0x1000, 0x4000, 0, "a")
	if err != nil {
		t.Fatalf("AddRegion: %v", err)
	}
	if got := pm.Find(0x1000); got != r {
		t.Errorf("Find(start) = %v, want %v", got, r)
	}
	if got := pm.Find(0x4FFF); got != r {
		t.Errorf("Find(end-1) = %v, want %v", got, r)
	}
	if got := pm.Find(0x5000); got != nil {
		t.Errorf("Find(end) = %v, want nil", got)
	}
	if got := pm.Find(0xFFF); got != nil {
		t.Errorf("Find(start-1) = %v, want nil", got)
	}
	if rm := pm.RemoveRegion(0x1000); rm != r {
		t.Errorf("RemoveRegion = %v, want %v", rm, r)
	}
	if got := pm.Find(0x1000); got != nil {
		t.Errorf("Find after remove = %v, want nil", got)
	}
}

func TestRegionOverlapRejected(t *testing.T) {
	pm := NewPhysMem()
	if _, err := pm.AddRegion(0x1000, 0x1000, 0, "a"); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ start, size uint64 }{
		{0x1000, 0x1000}, // exact duplicate
		{0x800, 0x900},   // overlaps head
		{0x1800, 0x1000}, // overlaps tail
		{0x800, 0x3000},  // engulfs
		{0x1400, 0x100},  // inside
	}
	for _, c := range cases {
		if _, err := pm.AddRegion(c.start, c.size, 0, "b"); err == nil {
			t.Errorf("AddRegion(%#x,%#x) succeeded, want overlap error", c.start, c.size)
		}
	}
	// Adjacent regions are fine.
	if _, err := pm.AddRegion(0x2000, 0x1000, 0, "c"); err != nil {
		t.Errorf("adjacent AddRegion failed: %v", err)
	}
	if _, err := pm.AddRegion(0x0, 0x1000, 0, "d"); err != nil {
		t.Errorf("adjacent-below AddRegion failed: %v", err)
	}
}

func TestRegionRejectsZeroAndWrap(t *testing.T) {
	pm := NewPhysMem()
	if _, err := pm.AddRegion(0x1000, 0, 0, "zero"); err == nil {
		t.Error("zero-size region accepted")
	}
	if _, err := pm.AddRegion(^uint64(0)-0x10, 0x100, 0, "wrap"); err == nil {
		t.Error("wrapping region accepted")
	}
}

func TestPhysMemReadWrite(t *testing.T) {
	pm := NewPhysMem()
	if _, err := pm.AddRegion(0x10000, 1<<20, 1, "m"); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write64(0x10008, 0xDEADBEEFCAFE); err != nil {
		t.Fatalf("Write64: %v", err)
	}
	v, err := pm.Read64(0x10008)
	if err != nil || v != 0xDEADBEEFCAFE {
		t.Fatalf("Read64 = %#x, %v; want 0xDEADBEEFCAFE", v, err)
	}
	// Unwritten memory reads zero.
	v, err = pm.Read64(0x10000 + 1<<19)
	if err != nil || v != 0 {
		t.Fatalf("Read64(untouched) = %#x, %v; want 0", v, err)
	}
	// Cross-chunk write/read (chunk granule is 64 KiB).
	buf := make([]byte, regionChunk+100)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	if err := pm.Write(0x10000+regionChunk-50, buf); err != nil {
		t.Fatalf("cross-chunk Write: %v", err)
	}
	got := make([]byte, len(buf))
	if err := pm.Read(0x10000+regionChunk-50, got); err != nil {
		t.Fatalf("cross-chunk Read: %v", err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], buf[i])
		}
	}
	if pm.NodeOf(0x10000) != 1 {
		t.Errorf("NodeOf = %d, want 1", pm.NodeOf(0x10000))
	}
	if pm.NodeOf(0x0) != -1 {
		t.Errorf("NodeOf(unbacked) = %d, want -1", pm.NodeOf(0x0))
	}
}

func TestPhysMemBusError(t *testing.T) {
	pm := NewPhysMem()
	if _, err := pm.AddRegion(0x1000, 0x1000, 0, "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Read64(0x0); !IsFault(err, FaultBusError) {
		t.Errorf("Read64(unbacked) err = %v, want bus error", err)
	}
	// Access straddling the end of a region is also a bus error.
	if err := pm.Write64(0x1FFC, 1); !IsFault(err, FaultBusError) {
		t.Errorf("straddling Write64 err = %v, want bus error", err)
	}
	f := &Fault{}
	if IsFault(f, FaultEPTViolation) {
		t.Error("IsFault matched wrong kind")
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignDown(0x12345, PageSize4K) != 0x12000 {
		t.Error("AlignDown wrong")
	}
	if AlignUp(0x12345, PageSize4K) != 0x13000 {
		t.Error("AlignUp wrong")
	}
	if AlignUp(0x12000, PageSize4K) != 0x12000 {
		t.Error("AlignUp of aligned value changed it")
	}
}

// Property: a written value is always read back identically anywhere within
// a region, across chunk boundaries.
func TestPhysMemRoundTripProperty(t *testing.T) {
	pm := NewPhysMem()
	const base, size = 0x100000, 1 << 22
	if _, err := pm.AddRegion(base, size, 0, "p"); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, val uint64) bool {
		addr := base + uint64(off)%(size-8)
		if err := pm.Write64(addr, val); err != nil {
			return false
		}
		got, err := pm.Read64(addr)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddRegion never produces overlapping regions, whatever the
// sequence of adds.
func TestRegionDisjointProperty(t *testing.T) {
	f := func(starts []uint16, sizes []uint8) bool {
		pm := NewPhysMem()
		n := len(starts)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			// Errors are fine; we only care about the invariant below.
			//covirt:allow physmem-errcheck overlap rejections are the point of this property test
			_, _ = pm.AddRegion(uint64(starts[i])*0x100, uint64(sizes[i])*0x100+0x100, 0, "r")
		}
		regs := pm.Regions()
		for i := 1; i < len(regs); i++ {
			if regs[i-1].End() > regs[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
