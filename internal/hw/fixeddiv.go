package hw

import "math/bits"

// FixedDiv computes x % d for a divisor fixed at construction, using a
// precomputed 64-bit reciprocal instead of the hardware divide. The hot
// gather-address generators reduce every RNG draw modulo a word count
// that is loop-invariant (an extent size fixed at carve-out time), so the
// 20-40 cycle DIV in that reduction is pure overhead; the reciprocal form
// is a widening multiply plus at most one subtraction.
//
// The estimate uses m = floor((2^64-1)/d). Writing r64 = (2^64-1) mod d,
// m*d = 2^64 - 1 - r64, so for q̂ = floor(m*x / 2^64):
//
//	m*x/2^64 = x/d - x*(1+r64)/(d*2^64)
//
// and the deficit term is < 1 for every x < 2^64 (since 1+r64 <= d).
// Hence q̂ is either floor(x/d) or floor(x/d)-1, and x - q̂*d lands in
// [x%d, x%d + d): exact after at most one conditional subtraction, for
// every d >= 1 including non-powers-of-two. The zero value (d = 0) is not
// usable; construct with NewFixedDiv.
type FixedDiv struct {
	d uint64 // the divisor
	m uint64 // floor((2^64-1)/d)
}

// NewFixedDiv precomputes the reciprocal for divisor d. d must be
// non-zero.
func NewFixedDiv(d uint64) FixedDiv {
	return FixedDiv{d: d, m: ^uint64(0) / d}
}

// D returns the divisor.
func (f FixedDiv) D() uint64 { return f.d }

// Mod returns x % f.D(), exactly, without a divide instruction.
func (f FixedDiv) Mod(x uint64) uint64 {
	hi, _ := bits.Mul64(f.m, x)
	r := x - hi*f.d
	if r >= f.d {
		r -= f.d
	}
	return r
}
