// Package hw implements the simulated hardware substrate that the rest of
// the Covirt reproduction runs on: sparse NUMA physical memory, CPUs with a
// deterministic cycle (TSC) cost model and a software-simulated TLB, local
// APICs with IPI and NMI delivery, model-specific registers, and I/O ports.
//
// The real Covirt system runs on bare x86 hardware with Intel VMX. A Go
// runtime cannot execute in VMX root mode, so this package substitutes a
// discrete-event style simulation: every operation a guest kernel or
// application performs (compute, memory access, IPI send, MSR/port access)
// is charged simulated cycles on the issuing CPU, and privileged operations
// are routed through an optional VirtLayer interception interface which the
// vmx package implements. Timing is therefore deterministic: a CPU's TSC
// depends only on the sequence of operations it executed, never on wall
// clock or goroutine scheduling.
//
// Fidelity notes:
//
//   - The TLB caches complete translations. A TLB hit bypasses all
//     translation-time protection checks, exactly as on real hardware; this
//     is why Covirt must flush TLBs after unmap operations, and the
//     simulation will happily let a guest read through a stale entry if the
//     hypervisor forgets to flush.
//   - Memory accesses resolve to real backing bytes, so a wild write from a
//     misbehaving co-kernel genuinely corrupts the memory of other
//     simulated OS instances unless a protection layer intervenes.
//   - Unbacked physical accesses and unhandled aborts crash the whole
//     simulated node, mirroring the failure mode the paper sets out to
//     prevent.
package hw
