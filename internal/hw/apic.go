package hw

import (
	"sync"
	"sync/atomic"
)

// MaxVectors is the size of the interrupt vector space.
const MaxVectors = 256

// pending-event flag bits used for the fast-path poll check. pendingIntr
// and pendingNMI track deliverable events; pendingKill and pendingCrash
// mirror the CPU kill latch and machine crash flag so CPU.poll's fast path
// can rule out every slow-path condition with a single atomic load.
const (
	pendingIntr uint32 = 1 << iota
	pendingNMI
	pendingKill
	pendingCrash
)

// pendingEvents masks the bits that mean an interrupt or NMI awaits
// delivery (as opposed to the kill/crash fast-path mirrors).
const pendingEvents = pendingIntr | pendingNMI

// timerDisarmed is the deadline sentinel meaning "timer not armed"; it lets
// checkTimer's common case (armed or not, deadline not reached) decide with
// one atomic load.
const timerDisarmed = ^uint64(0)

// APIC simulates a local Advanced Programmable Interrupt Controller: an
// interrupt request register (IRR) fed by IPIs and device interrupts, an NMI
// line, and a one-shot-rearming local timer. Incoming interrupts may be
// raised from any goroutine; delivery happens on the owning CPU's execution
// context via CPU.poll.
type APIC struct {
	cpuID int

	mu     sync.Mutex
	irr    [MaxVectors / 64]uint64 // pending vectors
	extIRR [MaxVectors / 64]uint64 // which pending vectors are device-originated
	nmi    int32                   // pending NMI count

	pending atomic.Uint32 // fast-path event flags
	notify  chan struct{} // wakes idle waiters

	// Timer state. The owning CPU advances the deadline; ArmTimer and
	// DisarmTimer may be called from management contexts, so the fields
	// are atomics. A deadline of timerDisarmed means the timer is off.
	timerDeadline atomic.Uint64
	timerInterval atomic.Uint64
	timerVector   atomic.Uint32

	// Counters (owning CPU's goroutine only, except raises).
	Delivered uint64 // interrupts delivered to the guest
	NMICount  uint64 // NMIs handled
}

// newAPIC returns an APIC for the given CPU id.
func newAPIC(cpuID int) *APIC {
	a := &APIC{cpuID: cpuID, notify: make(chan struct{}, 1)}
	a.timerDeadline.Store(timerDisarmed)
	return a
}

// signal wakes anything blocked in WaitEvent.
func (a *APIC) signal() {
	select {
	case a.notify <- struct{}{}:
	default:
	}
}

// Raise queues vector for delivery. external marks device-originated
// interrupts (as opposed to IPIs), which matters for posted-interrupt
// semantics: PIV avoids exits for IPIs but not for external interrupts.
func (a *APIC) Raise(vector uint8, external bool) {
	a.post(vector, external)
	a.pending.Or(pendingIntr)
	a.signal()
}

// post sets the IRR bits for vector under the lock.
func (a *APIC) post(vector uint8, external bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.irr[vector/64] |= 1 << (vector % 64)
	if external {
		a.extIRR[vector/64] |= 1 << (vector % 64)
	}
}

// RaiseNMI asserts the NMI line.
func (a *APIC) RaiseNMI() {
	atomic.AddInt32(&a.nmi, 1)
	a.pending.Or(pendingNMI)
	a.signal()
}

// takeNMI consumes one pending NMI, reporting whether one was pending.
func (a *APIC) takeNMI() bool {
	for {
		n := atomic.LoadInt32(&a.nmi)
		if n == 0 {
			return false
		}
		if atomic.CompareAndSwapInt32(&a.nmi, n, n-1) {
			if n == 1 {
				a.pending.And(^pendingNMI)
			}
			return true
		}
	}
}

// takeIntr pops the highest-priority (highest-numbered, as on x86) pending
// vector. It returns the vector, whether it was external, and whether
// anything was pending.
func (a *APIC) takeIntr() (vector uint8, external, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for w := len(a.irr) - 1; w >= 0; w-- {
		bits := a.irr[w]
		if bits == 0 {
			continue
		}
		// Highest set bit in this word.
		b := 63
		for ; b >= 0; b-- {
			if bits&(1<<uint(b)) != 0 {
				break
			}
		}
		v := uint8(w*64 + b)
		a.irr[w] &^= 1 << uint(b)
		ext := a.extIRR[w]&(1<<uint(b)) != 0
		a.extIRR[w] &^= 1 << uint(b)
		empty := true
		for _, x := range a.irr {
			if x != 0 {
				empty = false
				break
			}
		}
		if empty {
			a.pending.And(^pendingIntr)
		}
		return v, ext, true
	}
	return 0, false, false
}

// HasPending reports whether any interrupt or NMI awaits delivery.
func (a *APIC) HasPending() bool { return a.pending.Load()&pendingEvents != 0 }

// setKillPending and clearKillPending mirror the owning CPU's kill latch
// into the pending word (set by Kill, cleared by Revive).
func (a *APIC) setKillPending()   { a.pending.Or(pendingKill) }
func (a *APIC) clearKillPending() { a.pending.And(^pendingKill) }

// setCrashPending mirrors the machine crash flag; it is never cleared.
func (a *APIC) setCrashPending() { a.pending.Or(pendingCrash) }

// WaitEvent blocks until an event may be pending or done is closed. It is
// used by idle loops so halted CPUs still notice NMI doorbells.
func (a *APIC) WaitEvent(done <-chan struct{}) {
	if a.HasPending() {
		return
	}
	select {
	case <-a.notify:
	case <-done:
	}
}

// WaitSignal blocks until the next wakeup signal or done closes, ignoring
// already-pending events. Lockup modeling (StallNoIRQ) uses it: with
// interrupts disabled, pending vectors must not wake the core, but a Kill
// (which signals) must still be noticed.
func (a *APIC) WaitSignal(done <-chan struct{}) {
	select {
	case <-a.notify:
	case <-done:
	}
}

// ArmTimer programs the local timer to fire vector every interval cycles,
// starting from now (the caller's current TSC). A zero interval disarms.
func (a *APIC) ArmTimer(now, interval uint64, vector uint8) {
	a.timerInterval.Store(interval)
	a.timerVector.Store(uint32(vector))
	if interval == 0 {
		a.timerDeadline.Store(timerDisarmed)
		return
	}
	a.timerDeadline.Store(now + interval)
}

// DisarmTimer stops the local timer.
func (a *APIC) DisarmTimer() { a.timerDeadline.Store(timerDisarmed) }

// checkTimer raises the timer vector if now has passed the deadline,
// rearming for the next period. Called from the owning CPU only.
func (a *APIC) checkTimer(now uint64) {
	deadline := a.timerDeadline.Load()
	if now < deadline { // also covers the disarmed sentinel
		return
	}
	// Catch up without raising a storm if the CPU slept through many
	// periods: one interrupt per poll, deadline advanced past now.
	interval := a.timerInterval.Load()
	if interval == 0 {
		a.timerDeadline.Store(timerDisarmed)
		return
	}
	for deadline <= now {
		deadline += interval
	}
	a.timerDeadline.Store(deadline)
	a.Raise(uint8(a.timerVector.Load()), true) // the LAPIC timer is an external interrupt source
}

// pollsUntilTimer returns how many charges of step cycles a batched access
// path may apply, starting from now, before the poll that would observe the
// timer deadline — i.e. the smallest j ≥ 1 with now + j*step ≥ deadline.
// Per-page loops poll after every page, so a batched path that splits its
// charge at this boundary delivers the timer tick at exactly the same page
// as the element-at-a-time path. Returns MaxUint64 when no split is needed.
func (a *APIC) pollsUntilTimer(now, step uint64) uint64 {
	deadline := a.timerDeadline.Load()
	if deadline == timerDisarmed || step == 0 {
		return ^uint64(0)
	}
	if now >= deadline {
		return 1
	}
	d := deadline - now
	j := d / step
	if d%step != 0 {
		j++
	}
	return j
}
