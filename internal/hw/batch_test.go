package hw

import "testing"

// referenceStream is the element-at-a-time streaming loop MemStream batches:
// one translation lookup, one per-page cost, one poll per 4K page. Kept as
// the oracle the batched implementation must match cycle-for-cycle.
func referenceStream(c *CPU, addr, length uint64, write bool) error {
	if length == 0 {
		return c.poll()
	}
	cs := c.Costs()
	end := addr + length
	for page := AlignDown(addr, PageSize4K); page < end; page += PageSize4K {
		if !c.TLB.Lookup(page) {
			if err := c.translate(page, write); err != nil {
				return err
			}
		}
		lo, hi := page, page+PageSize4K
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		lines := (hi - lo + 63) / 64
		cost := lines * cs.MemLinePerStream
		if s := uint64(c.StreamSharers); s > 3 {
			cost = cost * 3 * s / 10
		}
		if r := c.findRegion(page); r != nil && r.Node != c.Node {
			cost = cs.remoteScale(cost)
		}
		c.Instret += lines
		c.charge(cost)
		if err := c.poll(); err != nil {
			return err
		}
	}
	return nil
}

// twinCPUs returns one CPU on each of two identically configured machines.
func twinCPUs(t *testing.T) (batched, reference *CPU) {
	t.Helper()
	mk := func() *CPU {
		spec := DefaultSpec()
		spec.MemPerNode = 1 << 30
		m, err := NewMachine(spec)
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		return m.CPU(0)
	}
	return mk(), mk()
}

func assertSameState(t *testing.T, what string, batched, reference *CPU) {
	t.Helper()
	if batched.TSC != reference.TSC {
		t.Errorf("%s: TSC diverged: batched %d reference %d", what, batched.TSC, reference.TSC)
	}
	if batched.Instret != reference.Instret {
		t.Errorf("%s: Instret diverged: batched %d reference %d", what, batched.Instret, reference.Instret)
	}
	if batched.IRQsTaken != reference.IRQsTaken {
		t.Errorf("%s: IRQsTaken diverged: batched %d reference %d", what, batched.IRQsTaken, reference.IRQsTaken)
	}
}

func TestMemStreamMatchesReference(t *testing.T) {
	base := uint64(1 << 21)
	remote := uint64(1<<38) + 4<<20 // node-1 memory: remote-scaled costs
	cases := []struct {
		name    string
		addr    uint64
		length  uint64
		sharers int
	}{
		{"aligned", base, 1 << 20, 0},
		{"partial-edges", base + 100, 3*PageSize4K + 700, 0},
		{"sub-page", base + 5000, 100, 0},
		{"contended", base, 1 << 20, 5},
		{"remote", remote, 1 << 19, 0},
		{"huge", base, 64 << 20, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, r := twinCPUs(t)
			b.StreamSharers = tc.sharers
			r.StreamSharers = tc.sharers
			if err := b.MemStream(tc.addr, tc.length, true); err != nil {
				t.Fatalf("batched: %v", err)
			}
			if err := referenceStream(r, tc.addr, tc.length, true); err != nil {
				t.Fatalf("reference: %v", err)
			}
			assertSameState(t, tc.name, b, r)
		})
	}
}

func TestMemStreamTimerTickLandsOnSamePage(t *testing.T) {
	b, r := twinCPUs(t)
	const vec = 0x40
	// Interval small enough that several ticks land inside one stream.
	interval := uint64(50_000)
	b.APIC.ArmTimer(b.TSC, interval, vec)
	r.APIC.ArmTimer(r.TSC, interval, vec)
	if err := b.MemStream(1<<21, 16<<20, false); err != nil {
		t.Fatalf("batched: %v", err)
	}
	if err := referenceStream(r, 1<<21, 16<<20, false); err != nil {
		t.Fatalf("reference: %v", err)
	}
	assertSameState(t, "timer", b, r)
	if b.IRQsTaken == 0 {
		t.Fatalf("timer never fired; interval too large for the stream")
	}
}

func TestAccessRunMatchesMemAccessLoop(t *testing.T) {
	base := uint64(1 << 21)
	remote := uint64(1<<38) + 4<<20
	cases := []struct {
		name   string
		addr   uint64
		n      int
		stride uint64
		kind   AccessKind
	}{
		{"dense-hot", base, 4096, 8, AccessHot},
		{"dense-dram", base, 4096, 8, AccessDRAM},
		{"page-stride", base, 512, PageSize4K, AccessDRAM},
		{"large-stride", base, 64, 3 << 20, AccessDRAM},
		{"zero-stride", base, 1000, 0, AccessDRAM},
		{"remote", remote, 2048, 64, AccessDRAM},
		{"unaligned-stride", base + 13, 997, 4099, AccessDRAM},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, r := twinCPUs(t)
			if err := b.AccessRun(tc.addr, tc.n, tc.stride, true, tc.kind); err != nil {
				t.Fatalf("batched: %v", err)
			}
			for i := uint64(0); i < uint64(tc.n); i++ {
				if err := r.MemAccess(tc.addr+i*tc.stride, true, tc.kind); err != nil {
					t.Fatalf("reference: %v", err)
				}
			}
			assertSameState(t, tc.name, b, r)
		})
	}
}

func TestAccessRunTimerTickLandsOnSameElement(t *testing.T) {
	b, r := twinCPUs(t)
	const vec = 0x41
	interval := uint64(9_973) // prime, lands mid-chunk
	b.APIC.ArmTimer(b.TSC, interval, vec)
	r.APIC.ArmTimer(r.TSC, interval, vec)
	if err := b.AccessRun(1<<21, 100_000, 8, false, AccessDRAM); err != nil {
		t.Fatalf("batched: %v", err)
	}
	for i := uint64(0); i < 100_000; i++ {
		if err := r.MemAccess(1<<21+i*8, false, AccessDRAM); err != nil {
			t.Fatalf("reference: %v", err)
		}
	}
	assertSameState(t, "timer", b, r)
	if b.IRQsTaken == 0 {
		t.Fatalf("timer never fired")
	}
}

func TestAccessRunFaultChargesExactPrefix(t *testing.T) {
	// Walk off the end of node 0's memory natively: the access that leaves
	// backed space aborts, and the prefix before it must charge exactly
	// what the per-element loop charged.
	b, r := twinCPUs(t)
	nodeEnd := uint64(1)<<30 + 1<<20 // MemBase 1M + MemPerNode-1M... region end
	reg := b.M.Mem.Find(1 << 21)
	if reg == nil {
		t.Fatalf("no backing region")
	}
	nodeEnd = reg.End()
	start := nodeEnd - 64*PageSize4K
	berr := b.AccessRun(start, 1<<20, PageSize4K, false, AccessDRAM)
	var rerr error
	for i := uint64(0); i < 1<<20; i++ {
		if rerr = r.MemAccess(start+i*PageSize4K, false, AccessDRAM); rerr != nil {
			break
		}
	}
	if berr == nil || rerr == nil {
		t.Fatalf("expected faults, got batched=%v reference=%v", berr, rerr)
	}
	if bf, rf := berr.(*Fault), rerr.(*Fault); bf.Kind != rf.Kind {
		t.Fatalf("fault kinds diverged: batched %v reference %v", bf.Kind, rf.Kind)
	}
	assertSameState(t, "fault-prefix", b, r)
}
