package hw

import (
	"testing"
	"testing/quick"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB()
	if tlb.Lookup(0x1234) {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(0x1234, PageSize4K)
	if !tlb.Lookup(0x1000) {
		t.Fatal("same-page lookup missed")
	}
	if !tlb.Lookup(0x1FFF) {
		t.Fatal("page-end lookup missed")
	}
	if tlb.Lookup(0x2000) {
		t.Fatal("next-page lookup hit")
	}
	s := tlb.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", s)
	}
}

func TestTLBLargePages(t *testing.T) {
	tlb := NewTLB()
	tlb.Insert(PageSize2M+123, PageSize2M)
	if !tlb.Lookup(PageSize2M + PageSize2M - 1) {
		t.Error("2M entry should cover whole 2M page")
	}
	if tlb.Lookup(PageSize2M * 2) {
		t.Error("2M entry covered too much")
	}
	tlb.Insert(PageSize1G*3+5, PageSize1G)
	if !tlb.Lookup(PageSize1G*3 + PageSize1G/2) {
		t.Error("1G entry should cover whole 1G page")
	}
}

func TestTLBEvictionRespectsCapacity(t *testing.T) {
	tlb := NewTLB()
	capacity := defaultTLBCaps[PageSize4K]
	for i := 0; i < capacity*3; i++ {
		tlb.Insert(uint64(i)*PageSize4K, PageSize4K)
	}
	count := tlb.Count(PageSize4K)
	if count > capacity {
		t.Errorf("4K entries = %d, exceeds capacity %d", count, capacity)
	}
	// Most recently inserted pages should still be resident.
	last := uint64(capacity*3-1) * PageSize4K
	if !tlb.Lookup(last) {
		t.Error("most recent insertion evicted")
	}
	// The first page inserted must be gone.
	if tlb.Lookup(0) {
		t.Error("oldest entry survived massive over-subscription")
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB()
	capacity := defaultTLBCaps[PageSize4K]
	for i := 0; i < capacity; i++ {
		tlb.Insert(uint64(i)*PageSize4K, PageSize4K)
	}
	// Touch page 0 so page 1 becomes LRU.
	if !tlb.Lookup(0) {
		t.Fatal("page 0 missing")
	}
	tlb.Insert(uint64(capacity)*PageSize4K, PageSize4K) // forces one eviction
	if !tlb.Lookup(0) {
		t.Error("recently-used page 0 evicted")
	}
	if tlb.Lookup(PageSize4K) {
		t.Error("LRU page 1 not evicted")
	}
}

func TestTLBFlushAll(t *testing.T) {
	tlb := NewTLB()
	tlb.Insert(0, PageSize4K)
	tlb.Insert(PageSize2M, PageSize2M)
	gen := tlb.Gen()
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Error("entries survived FlushAll")
	}
	if tlb.Gen() != gen+1 {
		t.Error("generation not bumped")
	}
	if tlb.Lookup(0) {
		t.Error("hit after FlushAll")
	}
}

func TestTLBFlushRange(t *testing.T) {
	tlb := NewTLB()
	tlb.Insert(0x0000, PageSize4K)
	tlb.Insert(0x1000, PageSize4K)
	tlb.Insert(0x2000, PageSize4K)
	tlb.Insert(PageSize2M, PageSize2M) // overlaps nothing below
	tlb.FlushRange(0x1000, 0x1000)
	if tlb.Lookup(0x1000) {
		t.Error("flushed page still resident")
	}
	if !tlb.Lookup(0x0000) || !tlb.Lookup(0x2000) {
		t.Error("neighbours flushed")
	}
	if !tlb.Lookup(PageSize2M) {
		t.Error("unrelated 2M entry flushed")
	}
	// A range overlapping part of a large page must flush the whole entry.
	tlb.FlushRange(PageSize2M+PageSize4K, PageSize4K)
	if tlb.Lookup(PageSize2M) {
		t.Error("partially-overlapped 2M entry survived")
	}
}

// Property: after Insert(addr, ps), Lookup hits for every address within the
// page and the per-class count never exceeds capacity.
func TestTLBInsertLookupProperty(t *testing.T) {
	sizes := []uint64{PageSize4K, PageSize2M, PageSize1G}
	f := func(addrs []uint32, sel []uint8) bool {
		tlb := NewTLB()
		n := len(addrs)
		if len(sel) < n {
			n = len(sel)
		}
		for i := 0; i < n; i++ {
			ps := sizes[int(sel[i])%len(sizes)]
			addr := uint64(addrs[i]) << 10
			tlb.Insert(addr, ps)
			if !tlb.Lookup(addr) {
				return false
			}
			if !tlb.Lookup(AlignDown(addr, ps) + ps - 1) {
				return false
			}
		}
		for _, ps := range sizes {
			if tlb.Count(ps) > tlb.Capacity(ps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
