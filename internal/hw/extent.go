package hw

import "fmt"

// Extent describes a contiguous physical memory range on one NUMA node. It
// is the unit of resource assignment between the host OS, the Pisces
// framework, enclaves, and XEMEM segments.
type Extent struct {
	Start uint64
	Size  uint64
	Node  int
}

// End returns the first address past the extent.
func (e Extent) End() uint64 { return e.Start + e.Size }

// Contains reports whether addr lies inside the extent.
func (e Extent) Contains(addr uint64) bool { return addr >= e.Start && addr < e.End() }

// ContainsRange reports whether [addr, addr+size) lies fully inside e.
func (e Extent) ContainsRange(addr, size uint64) bool {
	return addr >= e.Start && addr+size >= addr && addr+size <= e.End()
}

// Overlaps reports whether e and o share any address.
func (e Extent) Overlaps(o Extent) bool {
	return e.Start < o.End() && o.Start < e.End()
}

// String formats the extent for logs.
func (e Extent) String() string {
	return fmt.Sprintf("[%#x,+%#x)@node%d", e.Start, e.Size, e.Node)
}

// TotalSize sums the sizes of a slice of extents.
func TotalSize(exts []Extent) uint64 {
	var t uint64
	for _, e := range exts {
		t += e.Size
	}
	return t
}
