package hw

import "sync"

// IODevice services port I/O for a range of ports.
type IODevice interface {
	// In reads a value from the device at port.
	In(port uint16) uint32
	// Out writes val to the device at port.
	Out(port uint16, val uint32)
}

// Well-known port numbers used by examples and fault-injection tests.
const (
	PortSerialCOM1 uint16 = 0x3F8
	PortPIT        uint16 = 0x40
	PortKBC        uint16 = 0x64
	PortReset      uint16 = 0xCF9 // writing here resets the machine
)

// IOPortSpace routes port I/O to registered devices. Unclaimed ports float:
// reads return all-ones and writes are dropped, like an empty ISA bus.
type IOPortSpace struct {
	mu      sync.RWMutex
	devices map[uint16]IODevice
}

// NewIOPortSpace returns an empty port space.
func NewIOPortSpace() *IOPortSpace {
	return &IOPortSpace{devices: make(map[uint16]IODevice)}
}

// Register claims port for dev.
func (s *IOPortSpace) Register(port uint16, dev IODevice) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[port] = dev
}

// device looks up the handler for port under the read lock; device
// callbacks themselves run outside it.
func (s *IOPortSpace) device(port uint16) IODevice {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.devices[port]
}

// In performs a port read.
func (s *IOPortSpace) In(port uint16) uint32 {
	dev := s.device(port)
	if dev == nil {
		return 0xFFFFFFFF
	}
	return dev.In(port)
}

// Out performs a port write.
func (s *IOPortSpace) Out(port uint16, val uint32) {
	if dev := s.device(port); dev != nil {
		dev.Out(port, val)
	}
}

// SerialSink is a trivial IODevice capturing bytes written to a serial port;
// useful for observing guest console output in tests and examples.
type SerialSink struct {
	mu  sync.Mutex
	buf []byte
}

// In always reports transmitter-ready status.
func (s *SerialSink) In(port uint16) uint32 { return 0x20 }

// Out captures the low byte written.
func (s *SerialSink) Out(port uint16, val uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, byte(val))
}

// String returns everything written so far.
func (s *SerialSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.buf)
}
