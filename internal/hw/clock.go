package hw

import "sync"

// Clock is a virtual-time seam for management-plane subsystems that need a
// node-wide notion of elapsed time without consulting the wall clock. It is
// a monotonic cycle counter advanced only by explicit Advance calls — the
// supervision watchdog advances it once per scan pass, using intervals
// derived from the cost model — so every timestamp read from it is a pure
// function of the simulation's own progress. Per-CPU TSCs advance
// asynchronously with the work each core performs and cannot serve as a
// node-wide timeline; the Clock fills that role deterministically.
//
// The zero value is a valid clock starting at cycle 0.
type Clock struct {
	mu  sync.Mutex
	now uint64
}

// Now returns the current virtual time in cycles.
func (c *Clock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward by cycles and returns the new time.
func (c *Clock) Advance(cycles uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += cycles
	return c.now
}
