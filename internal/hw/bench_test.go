package hw

import "testing"

// BenchmarkPhysMemReadWrite measures the backing-store data path: region
// resolution (lock-free snapshot + binary search) plus the byte copy, the
// cost under every simulated Read64/Write64.
func BenchmarkPhysMemReadWrite(b *testing.B) {
	pm := NewPhysMem()
	if _, err := pm.AddRegion(1<<30, 64<<20, 0, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := pm.AddRegion(1<<38, 64<<20, 1, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(1) << 30
		if i%4 == 3 {
			base = 1 << 38 // exercise the non-first region too
		}
		addr := base + uint64(i%(1<<20))*8
		if err := pm.Write64(addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := pm.Read64(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLBLookup measures the hit path of the simulated TLB — the
// array-backed class scan every memory access performs before charging.
func BenchmarkTLBLookup(b *testing.B) {
	t := NewTLB()
	base := uint64(1) << 30
	for i := uint64(0); i < 48; i++ {
		t.Insert(base+i*PageSize4K, PageSize4K)
	}
	for i := uint64(0); i < 16; i++ {
		t.Insert(base+1<<29+i*PageSize2M, PageSize2M)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var addr uint64
		if i%4 == 3 {
			addr = base + 1<<29 + uint64(i%16)*PageSize2M + 64
		} else {
			addr = base + uint64(i%48)*PageSize4K + 8
		}
		if !t.Lookup(addr) {
			b.Fatal("unexpected TLB miss")
		}
	}
}
