package hw

import "fmt"

// FaultKind classifies hardware-level faults raised by the simulation.
type FaultKind int

const (
	// FaultBusError is a physical access to unbacked address space.
	FaultBusError FaultKind = iota
	// FaultEPTViolation is a nested-page-table permission/translation miss.
	FaultEPTViolation
	// FaultGP is a general-protection style violation (MSR, I/O).
	FaultGP
	// FaultDoubleFault is an abort-class exception (models #DF).
	FaultDoubleFault
	// FaultTripleFault is an unrecoverable abort; on real hardware it
	// resets the machine.
	FaultTripleFault
	// FaultMachineCrashed reports that the whole simulated node is down.
	FaultMachineCrashed
	// FaultEnclaveKilled reports that the issuing CPU's enclave was
	// terminated by a protection layer; execution cannot continue.
	FaultEnclaveKilled
)

// String returns the conventional name of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultBusError:
		return "bus-error"
	case FaultEPTViolation:
		return "ept-violation"
	case FaultGP:
		return "general-protection"
	case FaultDoubleFault:
		return "double-fault"
	case FaultTripleFault:
		return "triple-fault"
	case FaultMachineCrashed:
		return "machine-crashed"
	case FaultEnclaveKilled:
		return "enclave-killed"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is a hardware fault. It implements error so it can propagate out of
// memory and privileged-operation paths.
type Fault struct {
	Kind  FaultKind
	Addr  uint64 // faulting physical address, when applicable
	Write bool   // true if the faulting access was a write
	CPU   int    // CPU that raised the fault, when known
	Msg   string // optional detail
}

// Error implements the error interface.
func (f *Fault) Error() string {
	s := fmt.Sprintf("hw: %s at %#x (cpu %d)", f.Kind, f.Addr, f.CPU)
	if f.Write {
		s += " [write]"
	}
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	return s
}

// IsFault reports whether err is a *Fault of the given kind.
func IsFault(err error, kind FaultKind) bool {
	f, ok := err.(*Fault)
	return ok && f.Kind == kind
}
