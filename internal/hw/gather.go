package hw

// gatherShadowEvery bounds how many elements AccessGather may charge before
// republishing the TSC shadow (and re-reading the timer deadline) when no
// full poll intervenes, so cross-goroutine TSC readers — the supervisor's
// heartbeat watchdog above all — keep sub-microsecond-scale granularity
// even through long gather batches.
const gatherShadowEvery = 64

// AccessGather models one data access per element of addrs — the
// index-driven gathers of HPCG/GUPS-style kernels, whose targets hop
// between extents too irregularly for AccessRun's stride spans. When
// computePer is nonzero, each access is preceded by computePer compute
// operations (the RNG/index arithmetic feeding the gather address).
//
// It charges exactly what the equivalent loop of Compute and MemAccess
// calls would: the same per-element TLB lookup, translation and data
// costs, the same Instret count, and identical fault and timer-delivery
// points. The difference is the poll: the per-element loop runs the full
// CPU.poll after every operation, while this path checks the APIC pending
// word and the timer deadline inline and only falls into poll when one of
// them actually demands it — poll is a no-op apart from republishing the
// TSC shadow otherwise, so skipping it leaves the charged state
// bit-identical. The deadline is cached between polls; retiming the timer
// from a management context mid-batch is observed at gatherShadowEvery
// granularity, the same chunk-scale exposure MemStream and AccessRun
// accept via pollsUntilTimer.
func (c *CPU) AccessGather(addrs []uint64, computePer uint64, write bool, kind AccessKind) error {
	cs := c.Costs()
	computeCost := computePer * cs.Compute
	apic := c.APIC
	deadline := apic.timerDeadline.Load()
	since := 0
	for _, addr := range addrs {
		if computePer != 0 {
			c.Instret += computePer
			c.TSC += computeCost
			if apic.pending.Load() != 0 || c.TSC >= deadline {
				if err := c.poll(); err != nil {
					return err
				}
				deadline = apic.timerDeadline.Load()
				since = 0
			}
		}
		c.Instret++
		if !c.TLB.Lookup(addr) {
			if err := c.translate(addr, write); err != nil {
				return err
			}
		}
		c.dataCost(addr, kind)
		if apic.pending.Load() != 0 || c.TSC >= deadline {
			if err := c.poll(); err != nil {
				return err
			}
			deadline = apic.timerDeadline.Load()
			since = 0
			continue
		}
		if since++; since >= gatherShadowEvery {
			c.tscShadow.Store(c.TSC)
			deadline = apic.timerDeadline.Load()
			since = 0
		}
	}
	c.tscShadow.Store(c.TSC)
	return nil
}
