package hw

// Costs holds the cycle cost model used by every simulated CPU. All values
// are in simulated cycles unless noted. The defaults are loosely calibrated
// against a Xeon E5-2603 v4 (the paper's evaluation platform, 1.70 GHz) so
// that the *relative* overheads of virtualization features land in the bands
// the paper reports; absolute cycle counts are not meaningful beyond that.
type Costs struct {
	// Compute is the cost of one abstract ALU/FPU operation.
	Compute uint64

	// MemHit is the cost of a cache-resident memory access.
	MemHit uint64
	// MemDRAM is the cost of a local-node DRAM access (random access miss).
	MemDRAM uint64
	// MemLinePerStream is the per-64-byte-line cost of streaming sequential
	// memory (bandwidth-bound access, prefetchers active).
	MemLinePerStream uint64
	// RemoteNumer/RemoteDenom form the NUMA remote-access multiplier
	// (RemoteNumer/RemoteDenom applied to DRAM and stream costs).
	RemoteNumer uint64
	RemoteDenom uint64

	// WalkPerLevel is the cost of one page-table level access during a
	// native (non-nested) TLB miss walk (page-walk traffic largely hits
	// the cache hierarchy).
	WalkPerLevel uint64
	// EPTWalkPerLevel is the *additional* per-EPT-level cost of a nested
	// walk. The architectural worst case is (g+1)*(e+1)-1 accesses, but
	// paging-structure caches absorb all but roughly the e leaf-ward EPT
	// accesses, so the model charges e * EPTWalkPerLevel on top of the
	// guest walk.
	EPTWalkPerLevel uint64
	// VMXWalkSurcharge is charged per TLB-miss walk whenever the CPU runs
	// in VMX non-root mode, independent of EPT: it models the residual
	// costs of virtualized execution (VPID-tagged TLB pressure, VMCS
	// shadow-state traffic). This produces the small, feature-independent
	// baseline penalty the paper observes on HPCG.
	VMXWalkSurcharge uint64

	// VMExit and VMEntry are the world-switch costs of leaving and
	// re-entering guest (VMX non-root) execution.
	VMExit  uint64
	VMEntry uint64

	// IPISend is the cost of an ICR write delivering an IPI.
	IPISend uint64
	// IntrDeliver is the hardware delivery cost of an interrupt at the
	// receiving CPU (vector fetch, IDT dispatch).
	IntrDeliver uint64
	// GuestIRQ is the cost of the guest's interrupt handler body.
	GuestIRQ uint64
	// NMIHandler is the cost of the hypervisor NMI handler body, excluding
	// any command processing it performs.
	NMIHandler uint64
	// PostedProcess is the cost of hardware posted-interrupt processing
	// (PIR scan + injection) when PIV delivers an interrupt without an exit.
	PostedProcess uint64

	// TLBFlushAll and TLBFlushPage are costs of TLB invalidations.
	TLBFlushAll  uint64
	TLBFlushPage uint64

	// MSRAccess and IOAccess are the native costs of RDMSR/WRMSR and
	// port I/O instructions.
	MSRAccess uint64
	IOAccess  uint64

	// TimerIntervalCycles is the local APIC timer period programmed by the
	// guest kernel. Lightweight kernels minimize tick rate; the default
	// models a 10 Hz housekeeping tick at 1.7 GHz.
	TimerIntervalCycles uint64
}

// DefaultCosts returns the calibrated default cost model. See DESIGN.md §4
// and EXPERIMENTS.md for calibration notes.
func DefaultCosts() Costs {
	return Costs{
		Compute:          1,
		MemHit:           4,
		MemDRAM:          180,
		MemLinePerStream: 9,
		RemoteNumer:      17,
		RemoteDenom:      10,

		WalkPerLevel:     12,
		EPTWalkPerLevel:  1,
		VMXWalkSurcharge: 3,

		VMExit:  1400,
		VMEntry: 900,

		IPISend:       700,
		IntrDeliver:   300,
		GuestIRQ:      1200,
		NMIHandler:    900,
		PostedProcess: 450,

		TLBFlushAll:  600,
		TLBFlushPage: 150,

		MSRAccess: 90,
		IOAccess:  1200,

		TimerIntervalCycles: 170_000_000, // 10 Hz at 1.7 GHz
	}
}

// remoteScale applies the NUMA remote-access multiplier to cost c.
func (cs *Costs) remoteScale(c uint64) uint64 {
	if cs.RemoteDenom == 0 {
		return c
	}
	return c * cs.RemoteNumer / cs.RemoteDenom
}
