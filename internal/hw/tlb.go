package hw

// TLBStats counts translation-cache behaviour for one CPU.
type TLBStats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// tlbNode is one cached translation, linked into its class's LRU list.
type tlbNode struct {
	base       uint64 // page-aligned address
	pageSize   uint64
	gen        uint64 // translation generation it was filled under
	prev, next *tlbNode
}

// tlbClass holds all entries of one page size with O(1) LRU maintenance.
type tlbClass struct {
	entries  map[uint64]*tlbNode
	head     *tlbNode // most recently used
	tail     *tlbNode // least recently used
	cap      int
	pageSize uint64
}

func newTLBClass(capacity int, pageSize uint64) *tlbClass {
	return &tlbClass{entries: make(map[uint64]*tlbNode), cap: capacity, pageSize: pageSize}
}

// unlink removes n from the LRU list.
func (c *tlbClass) unlink(n *tlbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n the MRU entry.
func (c *tlbClass) pushFront(n *tlbNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch refreshes n's recency.
func (c *tlbClass) touch(n *tlbNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// TLB simulates a unified translation lookaside buffer with separate
// capacity classes per page size, true LRU replacement, and a generation
// stamp so stale entries can be distinguished in tests. A TLB is private
// to one CPU and must only be accessed from that CPU's execution context;
// cross-CPU invalidations arrive via the interrupt path (CPU.poll).
type TLB struct {
	classes map[uint64]*tlbClass
	// std caches the three architectural classes for allocation-free
	// lookups; extra tracks any non-standard page sizes (normally none).
	std   [3]*tlbClass // 2M, 4K, 1G in probe order
	extra []*tlbClass
	gen   uint64
	stats TLBStats
}

// Default per-page-size TLB capacities, loosely modelled on Broadwell
// (64 × 4K, 32 × 2M, 4 × 1G data TLB entries).
var defaultTLBCaps = map[uint64]int{
	PageSize4K: 64,
	PageSize2M: 32,
	PageSize1G: 4,
}

// probeOrder is the lookup order (most common mapping sizes first).
var probeOrder = [...]uint64{PageSize2M, PageSize4K, PageSize1G}

// NewTLB returns an empty TLB with default capacities.
func NewTLB() *TLB {
	t := &TLB{classes: make(map[uint64]*tlbClass, len(defaultTLBCaps))}
	for ps, capn := range defaultTLBCaps {
		t.classes[ps] = newTLBClass(capn, ps)
	}
	t.reindex()
	return t
}

// reindex rebuilds the probe caches after class-set changes.
func (t *TLB) reindex() {
	for i, ps := range probeOrder {
		t.std[i] = t.classes[ps]
	}
	t.extra = t.extra[:0]
	for ps, c := range t.classes {
		if ps != PageSize4K && ps != PageSize2M && ps != PageSize1G {
			t.extra = append(t.extra, c)
		}
	}
}

// class returns (creating if needed) the class for a page size.
func (t *TLB) class(pageSize uint64) *tlbClass {
	c, ok := t.classes[pageSize]
	if !ok {
		c = newTLBClass(16, pageSize) // unknown page size: modest default class
		t.classes[pageSize] = c
		t.reindex()
	}
	return c
}

// Lookup reports whether addr's translation is cached. On a hit the entry's
// recency is refreshed.
func (t *TLB) Lookup(addr uint64) bool {
	for i, ps := range probeOrder {
		c := t.std[i]
		if c == nil || len(c.entries) == 0 {
			continue
		}
		if n, ok := c.entries[addr&^(ps-1)]; ok {
			c.touch(n)
			t.stats.Hits++
			return true
		}
	}
	for _, c := range t.extra {
		if len(c.entries) == 0 {
			continue
		}
		if n, ok := c.entries[addr&^(c.pageSize-1)]; ok {
			c.touch(n)
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	return false
}

// Insert caches the translation of the page of the given size containing
// addr, evicting the least recently used same-size entry if the class is
// full.
func (t *TLB) Insert(addr, pageSize uint64) {
	c := t.class(pageSize)
	base := addr &^ (pageSize - 1)
	if n, ok := c.entries[base]; ok {
		c.touch(n)
		n.gen = t.gen
		return
	}
	if len(c.entries) >= c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.base)
	}
	n := &tlbNode{base: base, pageSize: pageSize, gen: t.gen}
	c.entries[base] = n
	c.pushFront(n)
}

// FlushAll drops every cached translation and bumps the generation counter.
func (t *TLB) FlushAll() {
	for ps, c := range t.classes {
		t.classes[ps] = newTLBClass(c.cap, ps)
	}
	t.reindex()
	t.gen++
	t.stats.Flushes++
}

// FlushRange drops all cached translations for pages overlapping
// [addr, addr+size).
func (t *TLB) FlushRange(addr, size uint64) {
	for _, c := range t.classes {
		for base, n := range c.entries {
			if base < addr+size && base+n.pageSize > addr {
				c.unlink(n)
				delete(c.entries, base)
			}
		}
	}
	t.stats.Flushes++
}

// Len returns the number of cached translations.
func (t *TLB) Len() int {
	total := 0
	for _, c := range t.classes {
		total += len(c.entries)
	}
	return total
}

// Count returns the number of cached translations of one page size.
func (t *TLB) Count(pageSize uint64) int {
	if c := t.classes[pageSize]; c != nil {
		return len(c.entries)
	}
	return 0
}

// Capacity returns the entry capacity of one page-size class.
func (t *TLB) Capacity(pageSize uint64) int {
	if c := t.classes[pageSize]; c != nil {
		return c.cap
	}
	return 0
}

// Gen returns the current translation generation (bumped by FlushAll).
func (t *TLB) Gen() uint64 { return t.gen }

// Stats returns a copy of the TLB counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the TLB counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }
