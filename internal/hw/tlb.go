package hw

// TLBStats counts translation-cache behaviour for one CPU.
type TLBStats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// tlbNode is one cached translation, linked into its class's LRU list and
// indexed into the class's live-entry array.
type tlbNode struct {
	base       uint64 // page-aligned address
	pageSize   uint64
	gen        uint64 // translation generation it was filled under
	prev, next *tlbNode
	slot       int // index in tlbClass.live
}

// tlbClass holds all entries of one page size with O(1) LRU maintenance.
// Entries live in a fixed-capacity array scanned linearly on lookup: with
// architectural capacities (≤64) a scan beats map probing and — unlike a
// map — insert/evict churn allocates nothing, which matters because every
// simulated TLB miss inserts here. The scan runs over a parallel array of
// bare tags (bases) rather than the nodes themselves, so a full-class miss
// touches a few contiguous cache lines instead of chasing 64 pointers.
type tlbClass struct {
	bases    []uint64   // tag array, parallel to live: bases[i] == live[i].base
	live     []*tlbNode // unordered live entries; node.slot is its index
	free     []*tlbNode // recycled nodes awaiting reuse
	head     *tlbNode   // most recently used
	tail     *tlbNode   // least recently used
	cap      int
	pageSize uint64
	// filter counts live entries per hash bucket: an exact (not
	// probabilistic) presence pre-check. Gather-heavy workloads miss far
	// more often than they hit, and a zero bucket answers the common miss
	// in one load instead of a full tag scan. Counts are maintained on
	// every insert/evict/remove, so a zero is always authoritative.
	filter [tlbFilterBuckets]uint8
	// hint[bucket] is the slot of the last entry inserted (or moved) whose
	// base hashes to the bucket. It is a best-effort accelerator for the hit
	// path: find verifies the slot's tag before trusting it and falls back
	// to the scan, so a stale hint costs time, never correctness.
	hint [tlbFilterBuckets]uint8
}

// tlbFilterBuckets sizes the per-class presence filter; with ≤64 live
// entries spread over 256 buckets, most absent tags land on a zero count.
const tlbFilterBuckets = 256

// filterBucket hashes a page base to its filter bucket.
func filterBucket(base uint64) int {
	return int((base * 0x9E3779B97F4A7C15) >> 56)
}

func newTLBClass(capacity int, pageSize uint64) *tlbClass {
	// live, bases and free are sized to capacity up front: every later
	// mutation is an in-capacity reslice, so the steady-state insert,
	// remove and reset paths never allocate (at most `capacity` nodes are
	// ever created, and each lives in exactly one of live/free).
	return &tlbClass{
		bases:    make([]uint64, 0, capacity),
		live:     make([]*tlbNode, 0, capacity),
		free:     make([]*tlbNode, 0, capacity),
		cap:      capacity,
		pageSize: pageSize,
	}
}

// find returns the live entry with the given base, or nil.
func (c *tlbClass) find(base uint64) *tlbNode {
	bk := filterBucket(base)
	if c.filter[bk] == 0 {
		return nil
	}
	if h := int(c.hint[bk]); h < len(c.bases) && c.bases[h] == base {
		return c.live[h]
	}
	for i, b := range c.bases {
		if b == base {
			return c.live[i]
		}
	}
	return nil
}

// unlink removes n from the LRU list.
func (c *tlbClass) unlink(n *tlbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n the MRU entry.
func (c *tlbClass) pushFront(n *tlbNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch refreshes n's recency.
func (c *tlbClass) touch(n *tlbNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// remove drops n from the class, recycling its node.
func (c *tlbClass) remove(n *tlbNode) {
	c.unlink(n)
	last := len(c.live) - 1
	moved := c.live[last]
	c.live[n.slot] = moved
	c.bases[n.slot] = c.bases[last]
	moved.slot = n.slot
	c.live = c.live[:last]
	c.bases = c.bases[:last]
	c.filter[filterBucket(n.base)]--
	c.hint[filterBucket(moved.base)] = uint8(n.slot)
	c.free = c.free[: len(c.free)+1]
	c.free[len(c.free)-1] = n
}

// insert adds a translation for base, evicting the LRU entry when full.
// The caller has checked base is not present.
func (c *tlbClass) insert(base, gen uint64) {
	var n *tlbNode
	if len(c.live) >= c.cap {
		// Reuse the evicted victim's node in place: same slot, new tag.
		n = c.tail
		c.filter[filterBucket(n.base)]--
		c.unlink(n)
	} else if k := len(c.free); k > 0 {
		n = c.free[k-1]
		c.free = c.free[:k-1]
		n.slot = len(c.live)
		c.live = c.live[:n.slot+1]
		c.live[n.slot] = n
		c.bases = c.bases[:n.slot+1]
		c.bases[n.slot] = 0
	} else {
		// First touch of this slot: the only allocation in the class's
		// lifetime after construction, bounded by cap nodes total.
		n = &tlbNode{pageSize: c.pageSize, slot: len(c.live)}
		c.live = c.live[:n.slot+1]
		c.live[n.slot] = n
		c.bases = c.bases[:n.slot+1]
		c.bases[n.slot] = 0
	}
	n.base, n.gen = base, gen
	c.bases[n.slot] = base
	bk := filterBucket(base)
	c.filter[bk]++
	c.hint[bk] = uint8(n.slot)
	c.pushFront(n)
}

// reset drops all live entries, keeping allocated nodes for reuse.
func (c *tlbClass) reset() {
	nf := len(c.free)
	c.free = c.free[: nf+len(c.live)]
	copy(c.free[nf:], c.live)
	c.live = c.live[:0]
	c.bases = c.bases[:0]
	c.head, c.tail = nil, nil
	c.filter = [tlbFilterBuckets]uint8{}
}

// TLB simulates a unified translation lookaside buffer with separate
// capacity classes per page size, true LRU replacement, and a generation
// stamp so stale entries can be distinguished in tests. A TLB is private
// to one CPU and must only be accessed from that CPU's execution context;
// cross-CPU invalidations arrive via the interrupt path (CPU.poll).
type TLB struct {
	classes map[uint64]*tlbClass
	// std caches the three architectural classes for allocation-free
	// lookups; extra tracks any non-standard page sizes (normally none).
	std   [3]*tlbClass // 2M, 4K, 1G in probe order
	extra []*tlbClass
	gen   uint64
	stats TLBStats
}

// Default per-page-size TLB capacities, loosely modelled on Broadwell
// (64 × 4K, 32 × 2M, 4 × 1G data TLB entries).
var defaultTLBCaps = map[uint64]int{
	PageSize4K: 64,
	PageSize2M: 32,
	PageSize1G: 4,
}

// probeOrder is the lookup order (most common mapping sizes first).
var probeOrder = [...]uint64{PageSize2M, PageSize4K, PageSize1G}

// NewTLB returns an empty TLB with default capacities.
func NewTLB() *TLB {
	t := &TLB{classes: make(map[uint64]*tlbClass, len(defaultTLBCaps))}
	for ps, capn := range defaultTLBCaps {
		t.classes[ps] = newTLBClass(capn, ps)
	}
	t.reindex()
	return t
}

// reindex rebuilds the probe caches after class-set changes.
func (t *TLB) reindex() {
	for i, ps := range probeOrder {
		t.std[i] = t.classes[ps]
	}
	t.extra = t.extra[:0]
	for ps, c := range t.classes {
		if ps != PageSize4K && ps != PageSize2M && ps != PageSize1G {
			t.extra = append(t.extra, c)
		}
	}
}

// class returns (creating if needed) the class for a page size. The three
// architectural sizes resolve through the probe cache, skipping the map.
func (t *TLB) class(pageSize uint64) *tlbClass {
	switch pageSize {
	case PageSize2M:
		return t.std[0]
	case PageSize4K:
		return t.std[1]
	case PageSize1G:
		return t.std[2]
	}
	c, ok := t.classes[pageSize]
	if !ok {
		// One-time lazy creation of a non-architectural class; never part
		// of the steady-state translation path.
		//covirt:allow transitive-hot one-time class creation off the hot path
		c = newTLBClass(16, pageSize) // unknown page size: modest default class
		t.classes[pageSize] = c
		//covirt:allow transitive-hot probe-cache rebuild only on class-set change
		t.reindex()
	}
	return c
}

// Cover reports whether addr's translation is cached and, on a hit, returns
// the covering entry's page base and size so callers can batch work across
// the whole translated span. Recency and hit/miss counters update exactly
// as Lookup.
func (t *TLB) Cover(addr uint64) (base, pageSize uint64, ok bool) {
	for i, ps := range probeOrder {
		c := t.std[i]
		if c == nil || len(c.live) == 0 {
			continue
		}
		if n := c.find(addr &^ (ps - 1)); n != nil {
			c.touch(n)
			t.stats.Hits++
			return n.base, ps, true
		}
	}
	for _, c := range t.extra {
		if len(c.live) == 0 {
			continue
		}
		if n := c.find(addr &^ (c.pageSize - 1)); n != nil {
			c.touch(n)
			t.stats.Hits++
			return n.base, c.pageSize, true
		}
	}
	t.stats.Misses++
	return 0, 0, false
}

// Lookup reports whether addr's translation is cached. On a hit the entry's
// recency is refreshed.
func (t *TLB) Lookup(addr uint64) bool {
	_, _, ok := t.Cover(addr)
	return ok
}

// Insert caches the translation of the page of the given size containing
// addr, evicting the least recently used same-size entry if the class is
// full.
func (t *TLB) Insert(addr, pageSize uint64) {
	c := t.class(pageSize)
	base := addr &^ (pageSize - 1)
	if n := c.find(base); n != nil {
		c.touch(n)
		n.gen = t.gen
		return
	}
	c.insert(base, t.gen)
}

// InsertFresh caches a translation the caller knows is absent — legal only
// immediately after a Cover/Lookup miss on the same address (flushes in
// between preserve absence). It skips Insert's presence scan, which would
// re-walk the full class on the miss path just to confirm the miss.
func (t *TLB) InsertFresh(addr, pageSize uint64) {
	c := t.class(pageSize)
	c.insert(addr&^(pageSize-1), t.gen)
}

// FlushAll drops every cached translation and bumps the generation counter.
func (t *TLB) FlushAll() {
	for _, c := range t.classes {
		c.reset()
	}
	t.gen++
	t.stats.Flushes++
}

// FlushRange drops all cached translations for pages overlapping
// [addr, addr+size).
func (t *TLB) FlushRange(addr, size uint64) {
	for _, c := range t.classes {
		for i := 0; i < len(c.live); {
			n := c.live[i]
			if n.base < addr+size && n.base+n.pageSize > addr {
				c.remove(n) // swaps the last entry into slot i; revisit it
				continue
			}
			i++
		}
	}
	t.stats.Flushes++
}

// Len returns the number of cached translations.
func (t *TLB) Len() int {
	total := 0
	for _, c := range t.classes {
		total += len(c.live)
	}
	return total
}

// Count returns the number of cached translations of one page size.
func (t *TLB) Count(pageSize uint64) int {
	if c := t.classes[pageSize]; c != nil {
		return len(c.live)
	}
	return 0
}

// Capacity returns the entry capacity of one page-size class.
func (t *TLB) Capacity(pageSize uint64) int {
	if c := t.classes[pageSize]; c != nil {
		return c.cap
	}
	return 0
}

// Gen returns the current translation generation (bumped by FlushAll).
func (t *TLB) Gen() uint64 { return t.gen }

// Stats returns a copy of the TLB counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the TLB counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }
