package hw

import (
	"testing"
)

func TestAPICRaiseTake(t *testing.T) {
	a := newAPIC(0)
	if _, _, ok := a.takeIntr(); ok {
		t.Fatal("empty APIC delivered")
	}
	a.Raise(0x41, false)
	if !a.HasPending() {
		t.Fatal("no pending after raise")
	}
	v, ext, ok := a.takeIntr()
	if !ok || v != 0x41 || ext {
		t.Fatalf("take = %#x, %v, %v", v, ext, ok)
	}
	if a.HasPending() {
		t.Fatal("pending after drain")
	}
}

func TestAPICExternalFlagPerVector(t *testing.T) {
	a := newAPIC(0)
	a.Raise(0x20, true)
	a.Raise(0x30, false)
	v1, ext1, _ := a.takeIntr() // higher vector first
	v2, ext2, _ := a.takeIntr()
	if v1 != 0x30 || ext1 {
		t.Errorf("first = %#x ext=%v", v1, ext1)
	}
	if v2 != 0x20 || !ext2 {
		t.Errorf("second = %#x ext=%v", v2, ext2)
	}
}

func TestAPICSameVectorCoalesces(t *testing.T) {
	a := newAPIC(0)
	for i := 0; i < 5; i++ {
		a.Raise(0x55, false)
	}
	count := 0
	for {
		if _, _, ok := a.takeIntr(); !ok {
			break
		}
		count++
	}
	if count != 1 {
		t.Errorf("delivered %d, want 1 (IRR is a bitmap)", count)
	}
}

func TestAPICNMICounting(t *testing.T) {
	a := newAPIC(0)
	a.RaiseNMI()
	a.RaiseNMI()
	if !a.takeNMI() || !a.takeNMI() {
		t.Fatal("NMIs lost")
	}
	if a.takeNMI() {
		t.Fatal("phantom NMI")
	}
	if a.HasPending() {
		t.Fatal("pending after NMIs drained")
	}
}

func TestAPICWaitEventReturnsOnDone(t *testing.T) {
	a := newAPIC(0)
	done := make(chan struct{})
	close(done)
	a.WaitEvent(done) // must not block
}

func TestAPICHighestVectorFirst(t *testing.T) {
	a := newAPIC(0)
	vecs := []uint8{0x21, 0xEF, 0x40, 0x3, 0x80}
	for _, v := range vecs {
		a.Raise(v, false)
	}
	want := []uint8{0xEF, 0x80, 0x40, 0x21, 0x3}
	for i, w := range want {
		v, _, ok := a.takeIntr()
		if !ok || v != w {
			t.Fatalf("delivery %d = %#x, want %#x", i, v, w)
		}
	}
}

func TestExtentHelpersHW(t *testing.T) {
	e := Extent{Start: 0x1000, Size: 0x1000, Node: 1}
	if e.End() != 0x2000 {
		t.Error("End")
	}
	if !e.Contains(0x1000) || !e.Contains(0x1FFF) || e.Contains(0x2000) {
		t.Error("Contains")
	}
	if !e.ContainsRange(0x1800, 0x800) || e.ContainsRange(0x1800, 0x801) {
		t.Error("ContainsRange")
	}
	if e.ContainsRange(0x1800, ^uint64(0)) {
		t.Error("ContainsRange wrap")
	}
	o := Extent{Start: 0x1800, Size: 0x1000}
	if !e.Overlaps(o) || !o.Overlaps(e) {
		t.Error("Overlaps")
	}
	if e.Overlaps(Extent{Start: 0x2000, Size: 0x1000}) {
		t.Error("adjacent extents overlap")
	}
	if TotalSize([]Extent{e, o}) != 0x2000 {
		t.Error("TotalSize")
	}
	if e.String() == "" {
		t.Error("String")
	}
}

func TestCostsRemoteScale(t *testing.T) {
	cs := DefaultCosts()
	if got := cs.remoteScale(100); got != 170 {
		t.Errorf("remoteScale(100) = %d", got)
	}
	var zero Costs
	if zero.remoteScale(100) != 100 {
		t.Error("zero-denominator scale changed value")
	}
}

func TestFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{FaultBusError, FaultEPTViolation, FaultGP,
		FaultDoubleFault, FaultTripleFault, FaultMachineCrashed, FaultEnclaveKilled}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d name %q", k, s)
		}
		seen[s] = true
	}
	f := &Fault{Kind: FaultEPTViolation, Addr: 0x123, Write: true, CPU: 2, Msg: "detail"}
	msg := f.Error()
	for _, want := range []string{"ept-violation", "0x123", "write", "detail"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
