package hw

import "testing"

// referenceGather is the element-at-a-time loop AccessGather batches: an
// optional compute charge, then one MemAccess, with a full poll after each
// operation. Kept as the oracle the batched implementation must match
// cycle-for-cycle.
func referenceGather(c *CPU, addrs []uint64, computePer uint64, write bool, kind AccessKind) error {
	for _, addr := range addrs {
		if computePer != 0 {
			if err := c.Compute(computePer); err != nil {
				return err
			}
		}
		if err := c.MemAccess(addr, write, kind); err != nil {
			return err
		}
	}
	return nil
}

// gatherAddrs builds a deterministic pseudo-random address pattern that
// alternates between two extents, the shape the workload chargers feed in.
func gatherAddrs(n int, aBase, aSize, bBase, bSize uint64) []uint64 {
	rng := NewRand(0x5DEECE66D)
	addrs := make([]uint64, n)
	for i := range addrs {
		if i%2 == 1 && bSize > 0 {
			addrs[i] = bBase + (rng.Next()%(bSize/8))*8
		} else {
			addrs[i] = aBase + (rng.Next()%(aSize/8))*8
		}
	}
	return addrs
}

func TestAccessGatherMatchesComputeAccessLoop(t *testing.T) {
	local := uint64(1 << 21)
	remote := uint64(1<<38) + 4<<20 // node-1 memory: remote-scaled costs
	cases := []struct {
		name       string
		addrs      []uint64
		computePer uint64
		kind       AccessKind
	}{
		{"local-dram", gatherAddrs(4096, local, 64<<20, 0, 0), 0, AccessDRAM},
		{"local-hot", gatherAddrs(4096, local, 64<<20, 0, 0), 0, AccessHot},
		{"alternating-remote", gatherAddrs(4096, local, 64<<20, remote, 64<<20), 0, AccessDRAM},
		{"with-compute", gatherAddrs(4096, local, 64<<20, remote, 64<<20), 6, AccessDRAM},
		{"single", gatherAddrs(1, local, 1<<20, 0, 0), 3, AccessDRAM},
		{"empty", nil, 6, AccessDRAM},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, r := twinCPUs(t)
			if err := b.AccessGather(tc.addrs, tc.computePer, true, tc.kind); err != nil {
				t.Fatalf("batched: %v", err)
			}
			if err := referenceGather(r, tc.addrs, tc.computePer, true, tc.kind); err != nil {
				t.Fatalf("reference: %v", err)
			}
			assertSameState(t, tc.name, b, r)
		})
	}
}

func TestAccessGatherTimerTickLandsOnSameElement(t *testing.T) {
	for _, computePer := range []uint64{0, 6} {
		b, r := twinCPUs(t)
		const vec = 0x42
		interval := uint64(9_973) // prime, lands mid-batch
		b.APIC.ArmTimer(b.TSC, interval, vec)
		r.APIC.ArmTimer(r.TSC, interval, vec)
		addrs := gatherAddrs(50_000, 1<<21, 128<<20, (1<<38)+4<<20, 64<<20)
		if err := b.AccessGather(addrs, computePer, false, AccessDRAM); err != nil {
			t.Fatalf("batched: %v", err)
		}
		if err := referenceGather(r, addrs, computePer, false, AccessDRAM); err != nil {
			t.Fatalf("reference: %v", err)
		}
		assertSameState(t, "timer", b, r)
		if b.IRQsTaken == 0 {
			t.Fatalf("timer never fired")
		}
	}
}

func TestAccessGatherFaultChargesExactPrefix(t *testing.T) {
	// Walk off the end of node 0's memory natively: the access that leaves
	// backed space aborts, and the prefix before it must charge exactly
	// what the per-element loop charged.
	b, r := twinCPUs(t)
	reg := b.M.Mem.Find(1 << 21)
	if reg == nil {
		t.Fatalf("no backing region")
	}
	addrs := make([]uint64, 128)
	for i := range addrs {
		addrs[i] = reg.End() - 64*PageSize4K + uint64(i)*PageSize4K
	}
	berr := b.AccessGather(addrs, 4, false, AccessDRAM)
	rerr := referenceGather(r, addrs, 4, false, AccessDRAM)
	if berr == nil || rerr == nil {
		t.Fatalf("expected faults, got batched=%v reference=%v", berr, rerr)
	}
	if bf, rf := berr.(*Fault), rerr.(*Fault); bf.Kind != rf.Kind {
		t.Fatalf("fault kinds diverged: batched %v reference %v", bf.Kind, rf.Kind)
	}
	assertSameState(t, "fault-prefix", b, r)
}

func TestAccessGatherPublishesTSCShadow(t *testing.T) {
	// A long batch with no pending events must still keep the published
	// shadow within gatherShadowEvery elements of the true TSC: the
	// watchdog reads it cross-goroutine to prove the core is alive.
	b, _ := twinCPUs(t)
	addrs := gatherAddrs(10_000, 1<<21, 64<<20, 0, 0)
	if err := b.AccessGather(addrs, 0, false, AccessDRAM); err != nil {
		t.Fatalf("gather: %v", err)
	}
	if got := b.TSCSnapshot(); got != b.TSC {
		t.Errorf("final shadow %d != TSC %d", got, b.TSC)
	}
}
