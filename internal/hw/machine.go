package hw

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NodeSpec describes one NUMA node of a machine.
type NodeSpec struct {
	ID      int
	Cores   []int
	MemBase uint64
	MemSize uint64
}

// Topology is the machine's NUMA layout.
type Topology struct {
	Nodes []NodeSpec
}

// NodeOfCore returns the NUMA node a core belongs to, or -1.
func (t *Topology) NodeOfCore(core int) int {
	for _, n := range t.Nodes {
		for _, c := range n.Cores {
			if c == core {
				return n.ID
			}
		}
	}
	return -1
}

// MachineSpec configures NewMachine. The default (zero-adjusted) spec models
// the paper's evaluation platform: two Xeon E5-2603 v4 sockets (6 cores
// each) and 64 GiB of memory split across two NUMA zones.
type MachineSpec struct {
	NumNodes     int
	CoresPerNode int
	MemPerNode   uint64
	Costs        Costs
}

// DefaultSpec returns the paper's dual-socket evaluation platform.
func DefaultSpec() MachineSpec {
	return MachineSpec{
		NumNodes:     2,
		CoresPerNode: 6,
		MemPerNode:   32 << 30,
		Costs:        DefaultCosts(),
	}
}

// nodeStride is the physical address stride between NUMA node memory bases.
const nodeStride = 1 << 38 // 256 GiB apart; leaves room for any MemPerNode

// Machine assembles physical memory, CPUs, NUMA topology and I/O ports into
// one simulated node.
type Machine struct {
	Mem   *PhysMem
	CPUs  []*CPU
	Topo  Topology
	Ports *IOPortSpace
	Costs Costs

	crashed     atomic.Bool
	crashReason atomic.Value // string
	crashCh     chan struct{}

	faultMu  sync.Mutex
	faultLog []Fault
}

// NewMachine builds a machine from spec. Each node's memory is registered as
// one region labelled "node<N>" — the host OS re-partitions it afterwards.
func NewMachine(spec MachineSpec) (*Machine, error) {
	if spec.NumNodes <= 0 || spec.CoresPerNode <= 0 {
		return nil, fmt.Errorf("hw: invalid machine spec %+v", spec)
	}
	if spec.MemPerNode == 0 {
		spec.MemPerNode = 32 << 30
	}
	if spec.MemPerNode > nodeStride {
		return nil, fmt.Errorf("hw: MemPerNode %d exceeds node stride", spec.MemPerNode)
	}
	if spec.Costs == (Costs{}) {
		spec.Costs = DefaultCosts()
	}
	m := &Machine{
		Mem:     NewPhysMem(),
		Ports:   NewIOPortSpace(),
		Costs:   spec.Costs,
		crashCh: make(chan struct{}),
	}
	core := 0
	for n := 0; n < spec.NumNodes; n++ {
		ns := NodeSpec{ID: n, MemBase: uint64(n) * nodeStride, MemSize: spec.MemPerNode}
		if n == 0 {
			ns.MemBase = 1 << 20 // leave the legacy low megabyte unbacked
			ns.MemSize -= 1 << 20
		}
		if _, err := m.Mem.AddRegion(ns.MemBase, ns.MemSize, n, fmt.Sprintf("node%d", n)); err != nil {
			return nil, err
		}
		for i := 0; i < spec.CoresPerNode; i++ {
			cpu := newCPU(m, core, n)
			m.CPUs = append(m.CPUs, cpu)
			ns.Cores = append(ns.Cores, core)
			core++
		}
		m.Topo.Nodes = append(m.Topo.Nodes, ns)
	}
	return m, nil
}

// CPU returns core id, or nil if out of range.
func (m *Machine) CPU(id int) *CPU {
	if id < 0 || id >= len(m.CPUs) {
		return nil
	}
	return m.CPUs[id]
}

// RouteIPI delivers an inter-processor interrupt from core src to core dest.
// IPIs to nonexistent cores are dropped on the bus, as real APIC messages
// to absent agents are.
func (m *Machine) RouteIPI(src, dest int, vector uint8) {
	if c := m.CPU(dest); c != nil {
		c.APIC.Raise(vector, false)
	}
}

// AssertIRQ raises a device (external) interrupt at core dest.
func (m *Machine) AssertIRQ(dest int, vector uint8) {
	if c := m.CPU(dest); c != nil {
		c.APIC.Raise(vector, true)
	}
}

// Crash takes the whole node down: every CPU's next operation fails with
// FaultMachineCrashed. This models the unprotected failure mode the paper
// targets — one co-kernel's abort killing the machine.
func (m *Machine) Crash(reason string) {
	if m.crashed.CompareAndSwap(false, true) {
		m.crashReason.Store(reason)
		close(m.crashCh)
		for _, c := range m.CPUs {
			c.APIC.setCrashPending()
			c.APIC.signal()
		}
	}
}

// CrashedCh returns a channel closed when the node crashes; long waits on
// shared-memory channels select on it so a dead machine releases them.
func (m *Machine) CrashedCh() <-chan struct{} { return m.crashCh }

// Crashed reports whether the node is down.
func (m *Machine) Crashed() bool { return m.crashed.Load() }

// CrashReason returns the first crash cause, or "".
func (m *Machine) CrashReason() string {
	if s, ok := m.crashReason.Load().(string); ok {
		return s
	}
	return ""
}

// RecordFault appends f to the machine's fault log (diagnostics, tests).
func (m *Machine) RecordFault(f Fault) {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	//covirt:allow transitive-hot fault logging is the exceptional path
	m.faultLog = append(m.faultLog, f)
}

// Faults returns a copy of the fault log.
func (m *Machine) Faults() []Fault {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	out := make([]Fault, len(m.faultLog))
	copy(out, m.faultLog)
	return out
}
