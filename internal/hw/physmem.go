package hw

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Page and large-page sizes used throughout the simulation.
const (
	PageSize4K = 1 << 12
	PageSize2M = 1 << 21
	PageSize1G = 1 << 30
)

// Region is a contiguous range of backed physical memory belonging to one
// NUMA node. Backing bytes are allocated lazily on first touch, in chunks,
// so multi-gigabyte address space layouts stay cheap to construct.
type Region struct {
	Start uint64
	Size  uint64
	Node  int
	Label string // owner tag, e.g. "host", "enclave-1"

	mu     sync.Mutex
	chunks map[uint64][]byte // chunk index -> backing
}

const regionChunk = 1 << 16 // 64 KiB lazy-allocation granule

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Start + r.Size }

// Contains reports whether the [addr, addr+size) range is fully inside r.
func (r *Region) Contains(addr, size uint64) bool {
	return addr >= r.Start && addr+size >= addr && addr+size <= r.End()
}

// copyChunk moves bytes between p and the chunk covering addr, allocating
// the chunk if needed, and returns the count moved. The copy runs under the
// region lock: cores and the host legitimately share pages (rings, the
// heartbeat page), so the backing itself must serialize access — an aligned
// 64-bit load can then observe a stale word but never a torn one.
func (r *Region) copyChunk(addr uint64, p []byte, write bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := (addr - r.Start) / regionChunk
	c, ok := r.chunks[idx]
	if !ok {
		//covirt:allow transitive-hot first-touch backing allocation, once per chunk
		c = make([]byte, regionChunk)
		r.chunks[idx] = c
	}
	off := (addr - r.Start) % regionChunk
	if write {
		return copy(c[off:], p)
	}
	return copy(p, c[off:])
}

// read copies backed bytes at addr into p. addr must be inside the region.
func (r *Region) read(addr uint64, p []byte) {
	for len(p) > 0 {
		n := r.copyChunk(addr, p, false)
		p = p[n:]
		addr += uint64(n)
	}
}

// write copies p into the region's backing at addr.
func (r *Region) write(addr uint64, p []byte) {
	for len(p) > 0 {
		n := r.copyChunk(addr, p, true)
		p = p[n:]
		addr += uint64(n)
	}
}

// PhysMem is the machine's physical address space: an ordered set of
// non-overlapping backed regions. Reads and writes outside any region are
// physical bus errors (machine aborts). PhysMem is safe for concurrent use:
// the region list is published as an immutable copy-on-write snapshot, so
// the read side (every simulated memory access) is lock-free; mutations are
// serialized under mu and each bumps the layout generation.
type PhysMem struct {
	mu      sync.Mutex
	regions atomic.Pointer[[]*Region] // immutable snapshot, sorted by Start
	gen     atomic.Uint64
}

// Gen returns the region-layout generation; it bumps whenever a region is
// added or removed, letting CPUs cache region lookups safely.
func (pm *PhysMem) Gen() uint64 { return pm.gen.Load() }

// NewPhysMem returns an empty physical address space.
func NewPhysMem() *PhysMem { return &PhysMem{} }

// snapshot returns the current immutable region list (callers must not
// modify it).
func (pm *PhysMem) snapshot() []*Region {
	if p := pm.regions.Load(); p != nil {
		return *p
	}
	return nil
}

// AddRegion registers a new backed region. It returns an error if the range
// overlaps an existing region or wraps the address space.
func (pm *PhysMem) AddRegion(start, size uint64, node int, label string) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("hw: zero-size region %q", label)
	}
	if start+size < start {
		return nil, fmt.Errorf("hw: region %q wraps address space", label)
	}
	r := &Region{Start: start, Size: size, Node: node, Label: label, chunks: make(map[uint64][]byte)}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	old := pm.snapshot()
	i := sort.Search(len(old), func(i int) bool { return old[i].Start >= start })
	if i > 0 && old[i-1].End() > start {
		return nil, fmt.Errorf("hw: region %q [%#x,%#x) overlaps %q", label, start, start+size, old[i-1].Label)
	}
	if i < len(old) && old[i].Start < start+size {
		return nil, fmt.Errorf("hw: region %q [%#x,%#x) overlaps %q", label, start, start+size, old[i].Label)
	}
	next := make([]*Region, 0, len(old)+1)
	next = append(next, old[:i]...)
	next = append(next, r)
	next = append(next, old[i:]...)
	pm.regions.Store(&next)
	pm.gen.Add(1)
	return r, nil
}

// RemoveRegion drops the region starting exactly at start. Backing memory is
// released. It returns the removed region, or nil if none matched.
func (pm *PhysMem) RemoveRegion(start uint64) *Region {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	old := pm.snapshot()
	i := sort.Search(len(old), func(i int) bool { return old[i].Start >= start })
	if i == len(old) || old[i].Start != start {
		return nil
	}
	r := old[i]
	next := make([]*Region, 0, len(old)-1)
	next = append(next, old[:i]...)
	next = append(next, old[i+1:]...)
	pm.regions.Store(&next)
	pm.gen.Add(1)
	return r
}

// Find returns the region containing addr, or nil. Lock-free.
func (pm *PhysMem) Find(addr uint64) *Region {
	regions := pm.snapshot()
	i := sort.Search(len(regions), func(i int) bool { return regions[i].End() > addr })
	if i == len(regions) || regions[i].Start > addr {
		return nil
	}
	return regions[i]
}

// Span returns the region containing addr (nil when unbacked) together with
// the first address above addr where the containing-region answer changes:
// the region's end on a hit, the next region's start (or the top of the
// address space) on a miss. Batched access paths use it to charge a whole
// run of addresses with one lookup. Lock-free.
func (pm *PhysMem) Span(addr uint64) (*Region, uint64) {
	regions := pm.snapshot()
	i := sort.Search(len(regions), func(i int) bool { return regions[i].End() > addr })
	if i == len(regions) {
		return nil, ^uint64(0)
	}
	if regions[i].Start > addr {
		return nil, regions[i].Start
	}
	return regions[i], regions[i].End()
}

// Regions returns a snapshot of all regions in address order.
func (pm *PhysMem) Regions() []*Region {
	regions := pm.snapshot()
	out := make([]*Region, len(regions))
	copy(out, regions)
	return out
}

// NodeOf returns the NUMA node owning addr, or -1 if unbacked.
func (pm *PhysMem) NodeOf(addr uint64) int {
	if r := pm.Find(addr); r != nil {
		return r.Node
	}
	return -1
}

// Read copies len(p) bytes at physical addr into p. The whole range must be
// backed by a single region; otherwise a *Fault (bus error) is returned.
func (pm *PhysMem) Read(addr uint64, p []byte) error {
	r := pm.Find(addr)
	if r == nil || !r.Contains(addr, uint64(len(p))) {
		return &Fault{Kind: FaultBusError, Addr: addr}
	}
	r.read(addr, p)
	return nil
}

// Write copies p to physical addr, with the same backing requirement as Read.
func (pm *PhysMem) Write(addr uint64, p []byte) error {
	r := pm.Find(addr)
	if r == nil || !r.Contains(addr, uint64(len(p))) {
		return &Fault{Kind: FaultBusError, Addr: addr, Write: true}
	}
	r.write(addr, p)
	return nil
}

// Read64 reads a little-endian uint64 at addr.
func (pm *PhysMem) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := pm.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 writes a little-endian uint64 at addr.
func (pm *PhysMem) Write64(addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return pm.Write(addr, b[:])
}

// Read32 reads a little-endian uint32 at addr.
func (pm *PhysMem) Read32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := pm.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Write32 writes a little-endian uint32 at addr.
func (pm *PhysMem) Write32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return pm.Write(addr, b[:])
}

// AlignDown rounds addr down to a multiple of align (a power of two).
func AlignDown(addr, align uint64) uint64 { return addr &^ (align - 1) }

// AlignUp rounds addr up to a multiple of align (a power of two).
func AlignUp(addr, align uint64) uint64 { return (addr + align - 1) &^ (align - 1) }
