package hw

import (
	"encoding/binary"
	"sync/atomic"
)

// AccessKind selects the data-cost class of a memory access. Workloads pick
// the class matching their access pattern; the TLB/translation path is
// identical for all classes.
type AccessKind int

const (
	// AccessHot models a cache-resident access.
	AccessHot AccessKind = iota
	// AccessDRAM models a random access missing all caches.
	AccessDRAM
)

// EmulInstr identifies an instruction that traps to the hypervisor for
// emulation when virtualization is active.
type EmulInstr int

const (
	// InstrCPUID is the cpuid instruction.
	InstrCPUID EmulInstr = iota
	// InstrXSETBV is the xsetbv instruction.
	InstrXSETBV
)

// VirtLayer intercepts privileged operations of a CPU running guest code.
// A nil VirtLayer means native (bare-metal) execution. The vmx package
// provides the implementation used by Covirt.
//
// Every method returns the extra simulated cycles charged to the CPU by the
// interception (world switches, emulation work, nested walks).
type VirtLayer interface {
	// TranslateGPA performs the nested (EPT) stage of a TLB-miss walk for
	// guest-physical address gpa. On success it returns the nested page
	// size backing the mapping so the combined TLB entry can be sized. On
	// an EPT violation it returns a fault, after giving the hypervisor's
	// exit handler the chance to act (typically terminating the enclave).
	TranslateGPA(c *CPU, gpa uint64, write bool) (extra uint64, pageSize uint64, err error)

	// FilterIPI is consulted when the guest writes the APIC ICR. deliver
	// reports whether the IPI should reach the destination.
	FilterIPI(c *CPU, dest int, vector uint8) (deliver bool, extra uint64, err error)

	// MSRRead and MSRWrite mediate RDMSR/WRMSR.
	MSRRead(c *CPU, msr uint32) (val uint64, extra uint64, err error)
	MSRWrite(c *CPU, msr uint32, val uint64) (extra uint64, err error)

	// IO mediates port I/O. For reads, val is ignored and out carries the
	// result; for writes, out is ignored.
	IO(c *CPU, port uint16, write bool, val uint32) (out uint32, extra uint64, err error)

	// OnInterrupt is invoked when a maskable interrupt is delivered to the
	// guest. The implementation charges exit/entry or posted-interrupt
	// costs according to its configuration.
	OnInterrupt(c *CPU, vector uint8, external bool) (extra uint64)

	// OnNMI is invoked when the NMI line fires; Covirt uses NMIs as the
	// hypervisor command-queue doorbell.
	OnNMI(c *CPU) (extra uint64)

	// Emulate executes a trapped instruction.
	Emulate(c *CPU, instr EmulInstr) (extra uint64, err error)

	// OnAbort handles an abort-class fault raised while the guest was
	// executing. The returned error replaces the fault (e.g. an
	// enclave-killed error if the hypervisor contained it).
	OnAbort(c *CPU, f *Fault) error
}

// CPU is one simulated core. All execution methods (Compute, MemAccess,
// Read64G, SendIPI, ...) must be called from a single goroutine — the
// "execution context" of that core — but control-plane methods (Kill) and
// APIC raises may come from anywhere.
type CPU struct {
	ID   int
	Node int
	M    *Machine

	// TSC is the simulated time-stamp counter in cycles. Owned by the
	// execution goroutine; other goroutines must use TSCSnapshot.
	TSC uint64

	TLB  *TLB
	APIC *APIC
	MSRs *MSRFile

	// Virt intercepts privileged operations; nil for native execution.
	Virt VirtLayer

	// GuestWalkLevels is the page-table depth charged on a native TLB miss
	// and for the guest stage of a nested miss. Kitten identity-maps with
	// 2 MiB pages, giving 3 levels.
	GuestWalkLevels int
	// StreamSharers is the number of cores concurrently sharing this
	// core's NUMA node memory bandwidth (set by the guest OS from its
	// partition layout). Streaming costs scale once enough sharers exist
	// to saturate the socket's bandwidth.
	StreamSharers int
	// GuestPageSize is the page size of guest mappings (TLB granularity
	// when no smaller nested page applies).
	GuestPageSize uint64

	killed atomic.Bool
	halted atomic.Bool

	irqHandler func(c *CPU, vector uint8, external bool)
	nmiHandler func(c *CPU)

	tscShadow atomic.Uint64 // published copy of TSC for cross-goroutine reads

	// regionCache memoizes the last two PhysMem regions this core touched
	// (single-goroutine owned; revalidated against the layout generation).
	// Two ways, not one: halo-exchange patterns alternate local/remote
	// targets every access, which a single slot thrashes on.
	regionCache    [2]*Region
	regionCacheGen uint64

	// Counters.
	Instret   uint64 // abstract operations retired
	IRQsTaken uint64
}

// findRegion resolves addr to its backing region through a per-core cache.
func (c *CPU) findRegion(addr uint64) *Region {
	if gen := c.M.Mem.Gen(); gen != c.regionCacheGen {
		c.regionCache = [2]*Region{}
		c.regionCacheGen = gen
	}
	if r := c.regionCache[0]; r != nil && r.Contains(addr, 1) {
		return r
	}
	if r := c.regionCache[1]; r != nil && r.Contains(addr, 1) {
		c.regionCache[0], c.regionCache[1] = r, c.regionCache[0]
		return r
	}
	r := c.M.Mem.Find(addr)
	if r != nil {
		c.regionCache[0], c.regionCache[1] = r, c.regionCache[0]
	}
	return r
}

// newCPU wires a CPU into machine m.
func newCPU(m *Machine, id, node int) *CPU {
	return &CPU{
		ID:              id,
		Node:            node,
		M:               m,
		TLB:             NewTLB(),
		APIC:            newAPIC(id),
		MSRs:            NewMSRFile(),
		GuestWalkLevels: 3,
		GuestPageSize:   PageSize2M,
	}
}

// Costs returns the machine cost model.
func (c *CPU) Costs() *Costs { return &c.M.Costs }

// charge advances the TSC by n cycles.
func (c *CPU) charge(n uint64) { c.TSC += n }

// TSCSnapshot returns a recently published TSC value; safe from any
// goroutine. The value lags the true TSC by at most one poll interval.
func (c *CPU) TSCSnapshot() uint64 { return c.tscShadow.Load() }

// Kill marks the CPU's current guest context as terminated. Every
// subsequent operation returns a FaultEnclaveKilled error. Safe from any
// goroutine; Covirt's hypervisor uses it to stop an enclave's cores.
func (c *CPU) Kill() {
	c.killed.Store(true)
	c.APIC.setKillPending()
	c.APIC.signal()
}

// Killed reports whether the guest context was terminated.
func (c *CPU) Killed() bool { return c.killed.Load() }

// Revive clears the killed and halted latches so a new guest context can
// boot on the core (enclave teardown + reboot path).
func (c *CPU) Revive() {
	c.killed.Store(false)
	c.halted.Store(false)
	c.APIC.clearKillPending()
}

// SetIRQHandler installs the guest interrupt handler invoked (on the
// execution goroutine) for each delivered vector.
func (c *CPU) SetIRQHandler(h func(c *CPU, vector uint8, external bool)) { c.irqHandler = h }

// SetNMIHandler installs the native NMI handler; ignored while a VirtLayer
// is installed (the hypervisor owns NMIs then).
func (c *CPU) SetNMIHandler(h func(c *CPU)) { c.nmiHandler = h }

// poll delivers pending events and checks for termination conditions. It is
// called at operation boundaries, mirroring how real interrupts are
// recognized at instruction retirement.
func (c *CPU) poll() error {
	c.tscShadow.Store(c.TSC)
	// One atomic load covers the kill/crash mirror bits, keeping the
	// overwhelmingly common "nothing pending" case down to four atomic
	// ops (shadow store, pending word, timer deadline, pending recheck).
	w := c.APIC.pending.Load()
	if w&pendingCrash != 0 && c.M.Crashed() {
		return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: c.M.CrashReason()}
	}
	if w&pendingKill != 0 && c.killed.Load() {
		return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
	}
	c.APIC.checkTimer(c.TSC)
	if !c.APIC.HasPending() {
		return nil
	}
	// NMIs preempt maskable interrupts.
	for c.APIC.takeNMI() {
		c.APIC.NMICount++
		c.charge(c.Costs().NMIHandler)
		if c.Virt != nil {
			c.charge(c.Virt.OnNMI(c))
		} else if c.nmiHandler != nil {
			c.nmiHandler(c)
		}
	}
	for {
		vector, external, ok := c.APIC.takeIntr()
		if !ok {
			break
		}
		c.APIC.Delivered++
		c.IRQsTaken++
		c.charge(c.Costs().IntrDeliver)
		if c.Virt != nil {
			c.charge(c.Virt.OnInterrupt(c, vector, external))
		}
		c.charge(c.Costs().GuestIRQ)
		if c.irqHandler != nil {
			// The handler runs in interrupt context: its cycles are charged
			// to IntrDeliver/GuestIRQ, not the interrupted code's budget,
			// and any locks it takes are its own frame's, so hot-path and
			// lock-ordering traversal stop at this dispatch.
			//covirt:allow transitive-hot,lock-order interrupt-context boundary
			c.irqHandler(c, vector, external)
		}
	}
	if c.killed.Load() { // an event handler may have terminated us
		return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
	}
	c.tscShadow.Store(c.TSC)
	return nil
}

// Compute retires n abstract compute operations.
func (c *CPU) Compute(n uint64) error {
	c.Instret += n
	c.charge(n * c.Costs().Compute)
	return c.poll()
}

// translate performs the TLB-miss path for addr, charging walk costs and
// inserting the resulting translation. It returns the protection error, if
// any.
func (c *CPU) translate(addr uint64, write bool) error {
	cs := c.Costs()
	c.charge(uint64(c.GuestWalkLevels) * cs.WalkPerLevel)
	pageSize := c.GuestPageSize
	if c.Virt != nil {
		extra, nps, err := c.Virt.TranslateGPA(c, addr, write)
		c.charge(extra)
		if err != nil {
			return err
		}
		if nps != 0 && nps < pageSize {
			pageSize = nps
		}
	} else {
		// Native: the walk found whatever the (possibly misconfigured)
		// guest tables said; unbacked targets become bus errors at access
		// time, not here.
		if c.findRegion(addr) == nil {
			// Accessing unbacked space natively is an abort: nothing can
			// handle it, the node goes down.
			f := &Fault{Kind: FaultBusError, Addr: addr, Write: write, CPU: c.ID}
			return c.abort(f)
		}
	}
	// translate only runs after a TLB miss on addr, so the entry is known
	// absent and the presence scan can be skipped.
	c.TLB.InsertFresh(addr, pageSize)
	return nil
}

// abort escalates an abort-class fault: a VirtLayer may contain it
// (terminating only the guest), otherwise the whole simulated node crashes.
func (c *CPU) abort(f *Fault) error {
	if c.Virt != nil {
		return c.Virt.OnAbort(c, f)
	}
	c.M.Crash(f.Error())
	return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: f.Error()}
}

// dataCost charges the data-stage cost of one access of the given kind,
// applying the NUMA remote multiplier when addr is on another node.
func (c *CPU) dataCost(addr uint64, kind AccessKind) {
	cs := c.Costs()
	var base uint64
	switch kind {
	case AccessHot:
		base = cs.MemHit
	default:
		base = cs.MemDRAM
	}
	if kind != AccessHot {
		if r := c.findRegion(addr); r != nil && r.Node != c.Node {
			base = cs.remoteScale(base)
		}
	}
	c.charge(base)
}

// MemAccess models a single data access at addr without touching backing
// bytes (timing/protection only). Use the Read/Write accessors when real
// data movement matters.
func (c *CPU) MemAccess(addr uint64, write bool, kind AccessKind) error {
	c.Instret++
	if !c.TLB.Lookup(addr) {
		if err := c.translate(addr, write); err != nil {
			return err
		}
	}
	c.dataCost(addr, kind)
	return c.poll()
}

// streamChunkPages bounds how many full pages a batched stream charges
// between polls, so the published TSC shadow and async event delivery keep
// page-scale granularity even under giant translation spans.
const streamChunkPages = 512

// streamPageCost computes the per-page streaming cost the element-at-a-time
// path charges for the byte range [lo, hi) of one 4K page. The integer
// scaling must happen per page, in this order, for batched charging to stay
// byte-identical (charge n pages as n*cost, never recompute on n*lines).
func (c *CPU) streamPageCost(lo, hi uint64, remote bool) (lines, cost uint64) {
	cs := c.Costs()
	lines = (hi - lo + 63) / 64
	cost = lines * cs.MemLinePerStream
	// Bandwidth contention: one core uses roughly 30% of a socket's
	// bandwidth, so beyond ~3 streaming cores the per-core rate drops.
	if s := uint64(c.StreamSharers); s > 3 {
		cost = cost * 3 * s / 10
	}
	if remote {
		cost = cs.remoteScale(cost)
	}
	return lines, cost
}

// streamSpan resolves the translation and region span covering page,
// translating on a TLB miss. It returns the first page-start past which the
// (translation, region) pair may change, and whether the region is remote.
func (c *CPU) streamSpan(page, end uint64, write bool) (limit uint64, remote bool, err error) {
	base, span, ok := c.TLB.Cover(page)
	if !ok {
		if err := c.translate(page, write); err != nil {
			return 0, false, err
		}
		if base, span, ok = c.TLB.Cover(page); !ok {
			base, span = page, PageSize4K // unreachable: translate inserts
		}
	}
	r, bound := c.M.Mem.Span(page)
	limit = base + span
	if bound < limit {
		limit = bound
	}
	if end < limit {
		limit = end
	}
	return limit, r != nil && r.Node != c.Node, nil
}

// MemStream models a sequential streaming access over [addr, addr+length),
// charging per-line bandwidth costs and simulating per-page translations.
//
// Charging is batched per translation span: the per-4K-page cost is computed
// once and multiplied by the page count, which is byte-identical to the
// per-page loop because the cost is constant within one (TLB entry, region)
// span. Timer interrupts still land on the exact page boundary the per-page
// loop would have delivered them on (see pollsUntilTimer).
func (c *CPU) MemStream(addr, length uint64, write bool) error {
	if length == 0 {
		return c.poll()
	}
	end := addr + length
	page := AlignDown(addr, PageSize4K)
	for page < end {
		limit, remote, err := c.streamSpan(page, end, write)
		if err != nil {
			return err
		}
		// Partial leading/trailing pages charge alone (the per-page loop
		// polls after every page, so an extra poll here changes nothing).
		if page < addr || page+PageSize4K > end {
			lo, hi := page, page+PageSize4K
			if lo < addr {
				lo = addr
			}
			if hi > end {
				hi = end
			}
			lines, cost := c.streamPageCost(lo, hi, remote)
			c.Instret += lines
			c.charge(cost)
			if err := c.poll(); err != nil {
				return err
			}
			page += PageSize4K
			continue
		}
		// Full pages with identical cost up to limit: charge as one batch,
		// splitting where the per-page loop would have taken a timer tick.
		full := (limit - page) / PageSize4K
		if full == 0 {
			full = 1 // region boundary inside this page; cost still from its start
		}
		if full > streamChunkPages {
			full = streamChunkPages
		}
		lines, cost := c.streamPageCost(page, page+PageSize4K, remote)
		if j := c.APIC.pollsUntilTimer(c.TSC, cost); j < full {
			full = j
		}
		c.Instret += full * lines
		c.charge(full * cost)
		if err := c.poll(); err != nil {
			return err
		}
		page += full * PageSize4K
	}
	return nil
}

// accessRunChunk bounds how many elements AccessRun charges between polls.
const accessRunChunk = 1024

// AccessRun models n data accesses of the given kind at addr, addr+stride,
// addr+2*stride, ... — the strided sweeps of STREAM/HPCG-style kernels. It
// charges exactly what the equivalent MemAccess loop would: one translation
// per TLB span, the same per-element data cost, the same Instret count, and
// identical fault behaviour (a fault mid-run charges the exact prefix the
// per-element loop would have charged). It is the batched fast path: cost
// is computed once per (translation, region) span and multiplied, instead
// of per element.
func (c *CPU) AccessRun(addr uint64, n int, stride uint64, write bool, kind AccessKind) error {
	cs := c.Costs()
	remaining := uint64(n)
	cur := addr
	for remaining > 0 {
		base, span, ok := c.TLB.Cover(cur)
		translated := false
		if !ok {
			// The per-element loop retires the element before the miss.
			c.Instret++
			if err := c.translate(cur, write); err != nil {
				return err
			}
			translated = true
			if base, span, ok = c.TLB.Cover(cur); !ok {
				base, span = AlignDown(cur, PageSize4K), PageSize4K
			}
		}
		limit := base + span
		elem := cs.MemHit
		if kind != AccessHot {
			elem = cs.MemDRAM
			r, bound := c.M.Mem.Span(cur)
			if bound < limit {
				limit = bound
			}
			if r != nil && r.Node != c.Node {
				elem = cs.remoteScale(elem)
			}
		}
		// Elements with addresses in [cur, limit) share this cost.
		count := remaining
		if stride > 0 {
			count = (limit - cur + stride - 1) / stride
			if count > remaining {
				count = remaining
			}
		}
		if count > accessRunChunk {
			count = accessRunChunk
		}
		if j := c.APIC.pollsUntilTimer(c.TSC, elem); j < count {
			count = j
		}
		inst := count
		if translated {
			inst-- // the translated element's retire was counted above
		}
		c.Instret += inst
		c.charge(count * elem)
		if err := c.poll(); err != nil {
			return err
		}
		remaining -= count
		cur += count * stride
	}
	return nil
}

// guardData runs the translation/protection path for a data accessor and
// reports whether the access may proceed to backing memory.
func (c *CPU) guardData(addr uint64, write bool, kind AccessKind) error {
	c.Instret++
	if !c.TLB.Lookup(addr) {
		if err := c.translate(addr, write); err != nil {
			return err
		}
	}
	c.dataCost(addr, kind)
	return nil
}

// memRW moves backing bytes for a guarded accessor through the per-core
// cached region, so one logical access resolves its region once and takes
// only the region's chunk lock — same semantics as PhysMem.Read/Write (the
// whole range must sit in a single region).
func (c *CPU) memRW(addr uint64, p []byte, write bool) error {
	r := c.findRegion(addr)
	if r == nil || !r.Contains(addr, uint64(len(p))) {
		return &Fault{Kind: FaultBusError, Addr: addr, Write: write}
	}
	if write {
		r.write(addr, p)
	} else {
		r.read(addr, p)
	}
	return nil
}

// Read64G reads a guest-visible 64-bit value at physical addr, going
// through the full translation/protection path. A read of unbacked space
// is an abort.
func (c *CPU) Read64G(addr uint64) (uint64, error) {
	if err := c.guardData(addr, false, AccessHot); err != nil {
		return 0, err
	}
	var b [8]byte
	if err := c.memRW(addr, b[:], false); err != nil {
		return 0, c.abort(err.(*Fault))
	}
	v := binary.LittleEndian.Uint64(b[:])
	if perr := c.poll(); perr != nil {
		return v, perr
	}
	return v, nil
}

// Write64G writes a guest-visible 64-bit value at physical addr through the
// full translation/protection path. Writes reaching backed memory really
// modify it — including memory owned by other OS instances, when no
// protection layer intervenes.
func (c *CPU) Write64G(addr, val uint64) error {
	if err := c.guardData(addr, true, AccessHot); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	if err := c.memRW(addr, b[:], true); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// ReadBytesG and WriteBytesG are byte-slice variants of the guarded
// accessors, charging one access per touched page.
func (c *CPU) ReadBytesG(addr uint64, p []byte) error {
	for page := AlignDown(addr, PageSize4K); page < addr+uint64(len(p)); page += PageSize4K {
		if err := c.guardData(page, false, AccessHot); err != nil {
			return err
		}
	}
	if err := c.memRW(addr, p, false); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// WriteBytesG writes p at addr with per-page protection checks.
func (c *CPU) WriteBytesG(addr uint64, p []byte) error {
	for page := AlignDown(addr, PageSize4K); page < addr+uint64(len(p)); page += PageSize4K {
		if err := c.guardData(page, true, AccessHot); err != nil {
			return err
		}
	}
	if err := c.memRW(addr, p, true); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// SendIPI writes the APIC ICR to deliver vector to CPU dest. With a
// VirtLayer installed the write traps and may be filtered.
func (c *CPU) SendIPI(dest int, vector uint8) error {
	c.Instret++
	c.charge(c.Costs().IPISend)
	deliver := true
	if c.Virt != nil {
		d, extra, err := c.Virt.FilterIPI(c, dest, vector)
		c.charge(extra)
		if err != nil {
			return err
		}
		deliver = d
	}
	if deliver {
		c.M.RouteIPI(c.ID, dest, vector)
	}
	return c.poll()
}

// RDMSR reads a model-specific register.
func (c *CPU) RDMSR(msr uint32) (uint64, error) {
	c.Instret++
	c.charge(c.Costs().MSRAccess)
	if c.Virt != nil {
		v, extra, err := c.Virt.MSRRead(c, msr)
		c.charge(extra)
		if err != nil {
			return 0, err
		}
		if perr := c.poll(); perr != nil {
			return v, perr
		}
		return v, nil
	}
	v := c.MSRs.Read(msr)
	if err := c.poll(); err != nil {
		return v, err
	}
	return v, nil
}

// WRMSR writes a model-specific register.
func (c *CPU) WRMSR(msr uint32, val uint64) error {
	c.Instret++
	c.charge(c.Costs().MSRAccess)
	if c.Virt != nil {
		extra, err := c.Virt.MSRWrite(c, msr, val)
		c.charge(extra)
		if err != nil {
			return err
		}
		return c.poll()
	}
	c.MSRs.Write(msr, val)
	return c.poll()
}

// IOIn reads from an I/O port.
func (c *CPU) IOIn(port uint16) (uint32, error) {
	c.Instret++
	c.charge(c.Costs().IOAccess)
	if c.Virt != nil {
		out, extra, err := c.Virt.IO(c, port, false, 0)
		c.charge(extra)
		if err != nil {
			return 0, err
		}
		if perr := c.poll(); perr != nil {
			return out, perr
		}
		return out, nil
	}
	v := c.M.Ports.In(port)
	if err := c.poll(); err != nil {
		return v, err
	}
	return v, nil
}

// IOOut writes to an I/O port.
func (c *CPU) IOOut(port uint16, val uint32) error {
	c.Instret++
	c.charge(c.Costs().IOAccess)
	if c.Virt != nil {
		_, extra, err := c.Virt.IO(c, port, true, val)
		c.charge(extra)
		if err != nil {
			return err
		}
		return c.poll()
	}
	c.M.Ports.Out(port, val)
	return c.poll()
}

// CPUID executes the (trapping under virtualization) cpuid instruction.
func (c *CPU) CPUID() error {
	c.Instret++
	c.charge(c.Costs().Compute * 40)
	if c.Virt != nil {
		extra, err := c.Virt.Emulate(c, InstrCPUID)
		c.charge(extra)
		if err != nil {
			return err
		}
	}
	return c.poll()
}

// RaiseDoubleFault injects an abort-class #DF on this CPU, as a buggy guest
// might trigger. Without a protection layer the node crashes.
func (c *CPU) RaiseDoubleFault(msg string) error {
	f := &Fault{Kind: FaultDoubleFault, CPU: c.ID, Msg: msg}
	return c.abort(f)
}

// Idle blocks the execution context until an event is pending or done
// closes, then delivers pending events. It returns poll's verdict.
func (c *CPU) Idle(done <-chan struct{}) error {
	c.APIC.WaitEvent(done)
	return c.poll()
}

// StallNoIRQ models a core locking up with interrupts disabled — the
// soft-hang failure mode a watchdog must catch, since the core still owns
// its hardware but no longer takes timer ticks or doorbells. The stall
// charges cycles up front (the lockup's simulated duration, immediately
// visible to cross-goroutine TSC readers) and then blocks without servicing
// interrupts until the guest context is killed or the machine crashes.
// Pending and newly raised vectors stay pending, exactly as they would with
// IF clear.
func (c *CPU) StallNoIRQ(cycles uint64) error {
	c.Instret++
	c.charge(cycles)
	c.tscShadow.Store(c.TSC)
	for {
		if c.M.Crashed() {
			return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: c.M.CrashReason()}
		}
		if c.killed.Load() {
			return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
		}
		c.APIC.WaitSignal(c.M.CrashedCh())
	}
}

// ReadTSC samples the simulated time-stamp counter (rdtsc).
func (c *CPU) ReadTSC() uint64 {
	c.Instret++
	c.charge(c.Costs().Compute * 24) // rdtsc latency
	return c.TSC
}
