package hw

import (
	"sync/atomic"
)

// AccessKind selects the data-cost class of a memory access. Workloads pick
// the class matching their access pattern; the TLB/translation path is
// identical for all classes.
type AccessKind int

const (
	// AccessHot models a cache-resident access.
	AccessHot AccessKind = iota
	// AccessDRAM models a random access missing all caches.
	AccessDRAM
)

// EmulInstr identifies an instruction that traps to the hypervisor for
// emulation when virtualization is active.
type EmulInstr int

const (
	// InstrCPUID is the cpuid instruction.
	InstrCPUID EmulInstr = iota
	// InstrXSETBV is the xsetbv instruction.
	InstrXSETBV
)

// VirtLayer intercepts privileged operations of a CPU running guest code.
// A nil VirtLayer means native (bare-metal) execution. The vmx package
// provides the implementation used by Covirt.
//
// Every method returns the extra simulated cycles charged to the CPU by the
// interception (world switches, emulation work, nested walks).
type VirtLayer interface {
	// TranslateGPA performs the nested (EPT) stage of a TLB-miss walk for
	// guest-physical address gpa. On success it returns the nested page
	// size backing the mapping so the combined TLB entry can be sized. On
	// an EPT violation it returns a fault, after giving the hypervisor's
	// exit handler the chance to act (typically terminating the enclave).
	TranslateGPA(c *CPU, gpa uint64, write bool) (extra uint64, pageSize uint64, err error)

	// FilterIPI is consulted when the guest writes the APIC ICR. deliver
	// reports whether the IPI should reach the destination.
	FilterIPI(c *CPU, dest int, vector uint8) (deliver bool, extra uint64, err error)

	// MSRRead and MSRWrite mediate RDMSR/WRMSR.
	MSRRead(c *CPU, msr uint32) (val uint64, extra uint64, err error)
	MSRWrite(c *CPU, msr uint32, val uint64) (extra uint64, err error)

	// IO mediates port I/O. For reads, val is ignored and out carries the
	// result; for writes, out is ignored.
	IO(c *CPU, port uint16, write bool, val uint32) (out uint32, extra uint64, err error)

	// OnInterrupt is invoked when a maskable interrupt is delivered to the
	// guest. The implementation charges exit/entry or posted-interrupt
	// costs according to its configuration.
	OnInterrupt(c *CPU, vector uint8, external bool) (extra uint64)

	// OnNMI is invoked when the NMI line fires; Covirt uses NMIs as the
	// hypervisor command-queue doorbell.
	OnNMI(c *CPU) (extra uint64)

	// Emulate executes a trapped instruction.
	Emulate(c *CPU, instr EmulInstr) (extra uint64, err error)

	// OnAbort handles an abort-class fault raised while the guest was
	// executing. The returned error replaces the fault (e.g. an
	// enclave-killed error if the hypervisor contained it).
	OnAbort(c *CPU, f *Fault) error
}

// CPU is one simulated core. All execution methods (Compute, MemAccess,
// Read64G, SendIPI, ...) must be called from a single goroutine — the
// "execution context" of that core — but control-plane methods (Kill) and
// APIC raises may come from anywhere.
type CPU struct {
	ID   int
	Node int
	M    *Machine

	// TSC is the simulated time-stamp counter in cycles. Owned by the
	// execution goroutine; other goroutines must use TSCSnapshot.
	TSC uint64

	TLB  *TLB
	APIC *APIC
	MSRs *MSRFile

	// Virt intercepts privileged operations; nil for native execution.
	Virt VirtLayer

	// GuestWalkLevels is the page-table depth charged on a native TLB miss
	// and for the guest stage of a nested miss. Kitten identity-maps with
	// 2 MiB pages, giving 3 levels.
	GuestWalkLevels int
	// StreamSharers is the number of cores concurrently sharing this
	// core's NUMA node memory bandwidth (set by the guest OS from its
	// partition layout). Streaming costs scale once enough sharers exist
	// to saturate the socket's bandwidth.
	StreamSharers int
	// GuestPageSize is the page size of guest mappings (TLB granularity
	// when no smaller nested page applies).
	GuestPageSize uint64

	killed atomic.Bool
	halted atomic.Bool

	irqHandler func(c *CPU, vector uint8, external bool)
	nmiHandler func(c *CPU)

	tscShadow atomic.Uint64 // published copy of TSC for cross-goroutine reads

	// regionCache memoizes the last PhysMem region this core touched
	// (single-goroutine owned; revalidated against the layout generation).
	regionCache    *Region
	regionCacheGen uint64

	// Counters.
	Instret   uint64 // abstract operations retired
	IRQsTaken uint64
}

// findRegion resolves addr to its backing region through a per-core cache.
func (c *CPU) findRegion(addr uint64) *Region {
	if gen := c.M.Mem.Gen(); gen != c.regionCacheGen {
		c.regionCache = nil
		c.regionCacheGen = gen
	}
	if r := c.regionCache; r != nil && r.Contains(addr, 1) {
		return r
	}
	r := c.M.Mem.Find(addr)
	if r != nil {
		c.regionCache = r
	}
	return r
}

// newCPU wires a CPU into machine m.
func newCPU(m *Machine, id, node int) *CPU {
	return &CPU{
		ID:              id,
		Node:            node,
		M:               m,
		TLB:             NewTLB(),
		APIC:            newAPIC(id),
		MSRs:            NewMSRFile(),
		GuestWalkLevels: 3,
		GuestPageSize:   PageSize2M,
	}
}

// Costs returns the machine cost model.
func (c *CPU) Costs() *Costs { return &c.M.Costs }

// charge advances the TSC by n cycles.
func (c *CPU) charge(n uint64) { c.TSC += n }

// TSCSnapshot returns a recently published TSC value; safe from any
// goroutine. The value lags the true TSC by at most one poll interval.
func (c *CPU) TSCSnapshot() uint64 { return c.tscShadow.Load() }

// Kill marks the CPU's current guest context as terminated. Every
// subsequent operation returns a FaultEnclaveKilled error. Safe from any
// goroutine; Covirt's hypervisor uses it to stop an enclave's cores.
func (c *CPU) Kill() {
	c.killed.Store(true)
	c.APIC.signal()
}

// Killed reports whether the guest context was terminated.
func (c *CPU) Killed() bool { return c.killed.Load() }

// Revive clears the killed and halted latches so a new guest context can
// boot on the core (enclave teardown + reboot path).
func (c *CPU) Revive() {
	c.killed.Store(false)
	c.halted.Store(false)
}

// SetIRQHandler installs the guest interrupt handler invoked (on the
// execution goroutine) for each delivered vector.
func (c *CPU) SetIRQHandler(h func(c *CPU, vector uint8, external bool)) { c.irqHandler = h }

// SetNMIHandler installs the native NMI handler; ignored while a VirtLayer
// is installed (the hypervisor owns NMIs then).
func (c *CPU) SetNMIHandler(h func(c *CPU)) { c.nmiHandler = h }

// poll delivers pending events and checks for termination conditions. It is
// called at operation boundaries, mirroring how real interrupts are
// recognized at instruction retirement.
func (c *CPU) poll() error {
	c.tscShadow.Store(c.TSC)
	if c.M.Crashed() {
		return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: c.M.CrashReason()}
	}
	if c.killed.Load() {
		return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
	}
	c.APIC.checkTimer(c.TSC)
	if !c.APIC.HasPending() {
		return nil
	}
	// NMIs preempt maskable interrupts.
	for c.APIC.takeNMI() {
		c.APIC.NMICount++
		c.charge(c.Costs().NMIHandler)
		if c.Virt != nil {
			c.charge(c.Virt.OnNMI(c))
		} else if c.nmiHandler != nil {
			c.nmiHandler(c)
		}
	}
	for {
		vector, external, ok := c.APIC.takeIntr()
		if !ok {
			break
		}
		c.APIC.Delivered++
		c.IRQsTaken++
		c.charge(c.Costs().IntrDeliver)
		if c.Virt != nil {
			c.charge(c.Virt.OnInterrupt(c, vector, external))
		}
		c.charge(c.Costs().GuestIRQ)
		if c.irqHandler != nil {
			c.irqHandler(c, vector, external)
		}
	}
	if c.killed.Load() { // an event handler may have terminated us
		return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
	}
	c.tscShadow.Store(c.TSC)
	return nil
}

// Compute retires n abstract compute operations.
func (c *CPU) Compute(n uint64) error {
	c.Instret += n
	c.charge(n * c.Costs().Compute)
	return c.poll()
}

// translate performs the TLB-miss path for addr, charging walk costs and
// inserting the resulting translation. It returns the protection error, if
// any.
func (c *CPU) translate(addr uint64, write bool) error {
	cs := c.Costs()
	c.charge(uint64(c.GuestWalkLevels) * cs.WalkPerLevel)
	pageSize := c.GuestPageSize
	if c.Virt != nil {
		extra, nps, err := c.Virt.TranslateGPA(c, addr, write)
		c.charge(extra)
		if err != nil {
			return err
		}
		if nps != 0 && nps < pageSize {
			pageSize = nps
		}
	} else {
		// Native: the walk found whatever the (possibly misconfigured)
		// guest tables said; unbacked targets become bus errors at access
		// time, not here.
		if c.findRegion(addr) == nil {
			// Accessing unbacked space natively is an abort: nothing can
			// handle it, the node goes down.
			f := &Fault{Kind: FaultBusError, Addr: addr, Write: write, CPU: c.ID}
			return c.abort(f)
		}
	}
	c.TLB.Insert(addr, pageSize)
	return nil
}

// abort escalates an abort-class fault: a VirtLayer may contain it
// (terminating only the guest), otherwise the whole simulated node crashes.
func (c *CPU) abort(f *Fault) error {
	if c.Virt != nil {
		return c.Virt.OnAbort(c, f)
	}
	c.M.Crash(f.Error())
	return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: f.Error()}
}

// dataCost charges the data-stage cost of one access of the given kind,
// applying the NUMA remote multiplier when addr is on another node.
func (c *CPU) dataCost(addr uint64, kind AccessKind) {
	cs := c.Costs()
	var base uint64
	switch kind {
	case AccessHot:
		base = cs.MemHit
	default:
		base = cs.MemDRAM
	}
	if kind != AccessHot {
		if r := c.findRegion(addr); r != nil && r.Node != c.Node {
			base = cs.remoteScale(base)
		}
	}
	c.charge(base)
}

// MemAccess models a single data access at addr without touching backing
// bytes (timing/protection only). Use the Read/Write accessors when real
// data movement matters.
func (c *CPU) MemAccess(addr uint64, write bool, kind AccessKind) error {
	c.Instret++
	if !c.TLB.Lookup(addr) {
		if err := c.translate(addr, write); err != nil {
			return err
		}
	}
	c.dataCost(addr, kind)
	return c.poll()
}

// MemStream models a sequential streaming access over [addr, addr+length),
// charging per-line bandwidth costs and simulating per-page translations.
func (c *CPU) MemStream(addr, length uint64, write bool) error {
	if length == 0 {
		return c.poll()
	}
	cs := c.Costs()
	end := addr + length
	for page := AlignDown(addr, PageSize4K); page < end; page += PageSize4K {
		if !c.TLB.Lookup(page) {
			if err := c.translate(page, write); err != nil {
				return err
			}
		}
		lo, hi := page, page+PageSize4K
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		lines := (hi - lo + 63) / 64
		cost := lines * cs.MemLinePerStream
		// Bandwidth contention: one core uses roughly 30% of a socket's
		// bandwidth, so beyond ~3 streaming cores the per-core rate drops.
		if s := uint64(c.StreamSharers); s > 3 {
			cost = cost * 3 * s / 10
		}
		if r := c.findRegion(page); r != nil && r.Node != c.Node {
			cost = cs.remoteScale(cost)
		}
		c.Instret += lines
		c.charge(cost)
		if err := c.poll(); err != nil {
			return err
		}
	}
	return nil
}

// guardData runs the translation/protection path for a data accessor and
// reports whether the access may proceed to backing memory.
func (c *CPU) guardData(addr uint64, write bool, kind AccessKind) error {
	c.Instret++
	if !c.TLB.Lookup(addr) {
		if err := c.translate(addr, write); err != nil {
			return err
		}
	}
	c.dataCost(addr, kind)
	return nil
}

// Read64G reads a guest-visible 64-bit value at physical addr, going
// through the full translation/protection path. A read of unbacked space
// is an abort.
func (c *CPU) Read64G(addr uint64) (uint64, error) {
	if err := c.guardData(addr, false, AccessHot); err != nil {
		return 0, err
	}
	v, err := c.M.Mem.Read64(addr)
	if err != nil {
		return 0, c.abort(err.(*Fault))
	}
	if perr := c.poll(); perr != nil {
		return v, perr
	}
	return v, nil
}

// Write64G writes a guest-visible 64-bit value at physical addr through the
// full translation/protection path. Writes reaching backed memory really
// modify it — including memory owned by other OS instances, when no
// protection layer intervenes.
func (c *CPU) Write64G(addr, val uint64) error {
	if err := c.guardData(addr, true, AccessHot); err != nil {
		return err
	}
	if err := c.M.Mem.Write64(addr, val); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// ReadBytesG and WriteBytesG are byte-slice variants of the guarded
// accessors, charging one access per touched page.
func (c *CPU) ReadBytesG(addr uint64, p []byte) error {
	for page := AlignDown(addr, PageSize4K); page < addr+uint64(len(p)); page += PageSize4K {
		if err := c.guardData(page, false, AccessHot); err != nil {
			return err
		}
	}
	if err := c.M.Mem.Read(addr, p); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// WriteBytesG writes p at addr with per-page protection checks.
func (c *CPU) WriteBytesG(addr uint64, p []byte) error {
	for page := AlignDown(addr, PageSize4K); page < addr+uint64(len(p)); page += PageSize4K {
		if err := c.guardData(page, true, AccessHot); err != nil {
			return err
		}
	}
	if err := c.M.Mem.Write(addr, p); err != nil {
		return c.abort(err.(*Fault))
	}
	return c.poll()
}

// SendIPI writes the APIC ICR to deliver vector to CPU dest. With a
// VirtLayer installed the write traps and may be filtered.
func (c *CPU) SendIPI(dest int, vector uint8) error {
	c.Instret++
	c.charge(c.Costs().IPISend)
	deliver := true
	if c.Virt != nil {
		d, extra, err := c.Virt.FilterIPI(c, dest, vector)
		c.charge(extra)
		if err != nil {
			return err
		}
		deliver = d
	}
	if deliver {
		c.M.RouteIPI(c.ID, dest, vector)
	}
	return c.poll()
}

// RDMSR reads a model-specific register.
func (c *CPU) RDMSR(msr uint32) (uint64, error) {
	c.Instret++
	c.charge(c.Costs().MSRAccess)
	if c.Virt != nil {
		v, extra, err := c.Virt.MSRRead(c, msr)
		c.charge(extra)
		if err != nil {
			return 0, err
		}
		if perr := c.poll(); perr != nil {
			return v, perr
		}
		return v, nil
	}
	v := c.MSRs.Read(msr)
	if err := c.poll(); err != nil {
		return v, err
	}
	return v, nil
}

// WRMSR writes a model-specific register.
func (c *CPU) WRMSR(msr uint32, val uint64) error {
	c.Instret++
	c.charge(c.Costs().MSRAccess)
	if c.Virt != nil {
		extra, err := c.Virt.MSRWrite(c, msr, val)
		c.charge(extra)
		if err != nil {
			return err
		}
		return c.poll()
	}
	c.MSRs.Write(msr, val)
	return c.poll()
}

// IOIn reads from an I/O port.
func (c *CPU) IOIn(port uint16) (uint32, error) {
	c.Instret++
	c.charge(c.Costs().IOAccess)
	if c.Virt != nil {
		out, extra, err := c.Virt.IO(c, port, false, 0)
		c.charge(extra)
		if err != nil {
			return 0, err
		}
		if perr := c.poll(); perr != nil {
			return out, perr
		}
		return out, nil
	}
	v := c.M.Ports.In(port)
	if err := c.poll(); err != nil {
		return v, err
	}
	return v, nil
}

// IOOut writes to an I/O port.
func (c *CPU) IOOut(port uint16, val uint32) error {
	c.Instret++
	c.charge(c.Costs().IOAccess)
	if c.Virt != nil {
		_, extra, err := c.Virt.IO(c, port, true, val)
		c.charge(extra)
		if err != nil {
			return err
		}
		return c.poll()
	}
	c.M.Ports.Out(port, val)
	return c.poll()
}

// CPUID executes the (trapping under virtualization) cpuid instruction.
func (c *CPU) CPUID() error {
	c.Instret++
	c.charge(c.Costs().Compute * 40)
	if c.Virt != nil {
		extra, err := c.Virt.Emulate(c, InstrCPUID)
		c.charge(extra)
		if err != nil {
			return err
		}
	}
	return c.poll()
}

// RaiseDoubleFault injects an abort-class #DF on this CPU, as a buggy guest
// might trigger. Without a protection layer the node crashes.
func (c *CPU) RaiseDoubleFault(msg string) error {
	f := &Fault{Kind: FaultDoubleFault, CPU: c.ID, Msg: msg}
	return c.abort(f)
}

// Idle blocks the execution context until an event is pending or done
// closes, then delivers pending events. It returns poll's verdict.
func (c *CPU) Idle(done <-chan struct{}) error {
	c.APIC.WaitEvent(done)
	return c.poll()
}

// StallNoIRQ models a core locking up with interrupts disabled — the
// soft-hang failure mode a watchdog must catch, since the core still owns
// its hardware but no longer takes timer ticks or doorbells. The stall
// charges cycles up front (the lockup's simulated duration, immediately
// visible to cross-goroutine TSC readers) and then blocks without servicing
// interrupts until the guest context is killed or the machine crashes.
// Pending and newly raised vectors stay pending, exactly as they would with
// IF clear.
func (c *CPU) StallNoIRQ(cycles uint64) error {
	c.Instret++
	c.charge(cycles)
	c.tscShadow.Store(c.TSC)
	for {
		if c.M.Crashed() {
			return &Fault{Kind: FaultMachineCrashed, CPU: c.ID, Msg: c.M.CrashReason()}
		}
		if c.killed.Load() {
			return &Fault{Kind: FaultEnclaveKilled, CPU: c.ID}
		}
		c.APIC.WaitSignal(c.M.CrashedCh())
	}
}

// ReadTSC samples the simulated time-stamp counter (rdtsc).
func (c *CPU) ReadTSC() uint64 {
	c.Instret++
	c.charge(c.Costs().Compute * 24) // rdtsc latency
	return c.TSC
}
