package hw

import "testing"

// TestFixedDivMod checks the reciprocal reduction against the hardware
// modulo across divisor shapes (tiny, odd, power-of-two, near-2^64) and
// the x values that stress the one-subtraction correction bound.
func TestFixedDivMod(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 5, 7, 8, 26, 27, 100, 255, 256, 257,
		1<<20 - 1, 1 << 20, 1<<20 + 1,
		1<<32 - 1, 1 << 32, 1<<32 + 17,
		0x9E3779B97F4A7C15, 1 << 63, ^uint64(0) - 1, ^uint64(0),
	}
	// Small divisors exhaustively enough to cover every residue class.
	for d := uint64(1); d <= 64; d++ {
		divisors = append(divisors, d)
	}
	rng := NewRand(1)
	for _, d := range divisors {
		f := NewFixedDiv(d)
		if f.D() != d {
			t.Fatalf("NewFixedDiv(%d).D() = %d", d, f.D())
		}
		xs := []uint64{
			0, 1, d - 1, d, d + 1, 2*d - 1, 2 * d, 3 * d,
			^uint64(0), ^uint64(0) - 1, ^uint64(0) - d, 1 << 63, 1<<63 - 1,
		}
		for i := 0; i < 1000; i++ {
			xs = append(xs, rng.Next())
		}
		for _, x := range xs {
			if got, want := f.Mod(x), x%d; got != want {
				t.Fatalf("FixedDiv(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}
