package hw

// Rand is the simulation's deterministic pseudo-random source, an
// xorshift64 generator. Simulation code must draw randomness from a
// seeded Rand instead of wall-clock time or the global math/rand source,
// so that every cycle count is a pure function of the seed and machine
// history (covirt-vet's determinism check bans the alternatives). The
// zero value is not usable; construct with NewRand or a non-zero
// conversion.
type Rand uint64

// randDefaultSeed replaces a zero seed (the xorshift fixed point).
const randDefaultSeed = 0x9E3779B97F4A7C15

// NewRand returns a generator for seed; a zero seed is remapped to a
// fixed non-zero constant.
func NewRand(seed uint64) Rand {
	if seed == 0 {
		seed = randDefaultSeed
	}
	return Rand(seed)
}

// Next advances the generator and returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	v := uint64(*r)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*r = Rand(v)
	return v
}

// Uint64n returns a value in [0, n). n must be non-zero.
func (r *Rand) Uint64n(n uint64) uint64 {
	return r.Next() % n
}
